package metadb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DB is an embedded database instance. It is safe for concurrent use,
// and readers scale: every SELECT/EXPLAIN runs against an immutable
// MVCC snapshot obtained with one atomic pointer load, so readers
// never block the writer and never observe a half-applied multi-row
// batch. Tables are hash-sharded by the leading column of their widest
// index; writers build new shard versions copy-on-write under
// per-shard locks, so batches routed to disjoint shards commit in
// parallel (see mvcc.go for the protocol).
type DB struct {
	state   atomic.Pointer[dbState]
	nshards int

	// commitMu serializes publication of new states; the critical
	// section is a shallow rebase onto the latest tip, not the edit.
	commitMu sync.Mutex
	// ddlMu fences schema changes: DML takes the read side, DDL and
	// Load the write side, so a statement's table metadata cannot
	// change under it.
	ddlMu sync.RWMutex
	// locksMu guards the per-table writer-lock registry (entries are
	// created by DDL, looked up by DML).
	locksMu sync.RWMutex
	locks   map[string]*tableLocks

	// stmtMu guards the shared prepared-statement cache used by the
	// DB-level convenience methods; Session handles bypass it.
	stmtMu    sync.Mutex
	stmtCache map[string]cachedStmt

	queryCount  atomic.Int64 // cumulative statements executed, for cost accounting
	rowsScanned atomic.Int64 // candidate rows examined by WHERE evaluation
	indexHits   atomic.Int64 // statements answered from an index (equality or range)
	orderSkips  atomic.Int64 // ORDER BYs served from index order, skipping the sort

	// Per-plan-kind counts: how WHERE candidates were obtained. The
	// EXPLAIN report and the execution path share one plan selector, so
	// these can never disagree with what EXPLAIN prints.
	planEqCount    atomic.Int64
	planRangeCount atomic.Int64
	planScanCount  atomic.Int64
	// The same statements split by shard targeting: plans that read
	// exactly one shard vs scatter-gather plans that merge all shards.
	planSingleShard atomic.Int64
	planScatter     atomic.Int64

	snapshots  atomic.Int64 // MVCC snapshots taken by read statements
	commits    atomic.Int64 // state versions published by writers
	shardWaits atomic.Int64 // contended shard-lock acquisitions
}

type cachedStmt struct {
	stmt    statement
	nparams int
}

// indexKey is the map key an index is registered under: its column
// names joined by commas, so a single-column index is found under the
// bare column name (range and ORDER BY lookups use that) and composite
// indexes never shadow it.
func indexKey(cols []string) string { return strings.Join(cols, ",") }

// bucket holds the row ids sharing one distinct tuple of the indexed
// columns, remembering the tuple itself so single-column buckets can be
// ordered for range scans.
type bucket struct {
	vals []Value
	ids  []int64
}

// index is a hash index over one or more columns; each shard holds its
// own instance covering that shard's rows. Single-column indexes
// additionally support range scans and ORDER BY service through the
// sorted bucket cache; composite (multi-column) indexes answer only
// full-equality lookups — the shape of the catalog's
// (runid, dataset, timestep) execution-table probes.
type index struct {
	name   string
	cols   []string
	colPos []int
	m      map[string]*bucket
	// sorted caches the buckets ordered by compare(vals[0]); nil when a
	// structural change (new or emptied bucket) made it stale. Range
	// predicates rebuild it lazily and binary-search it; sortMu
	// serializes racing rebuilds. Published indexes are otherwise
	// immutable (writers clone copy-on-write), so this is the one
	// tolerated in-place mutation and it is idempotent. Only maintained
	// meaningfully for single-column indexes.
	sortMu sync.Mutex
	sorted []*bucket
}

func newIndex(name string, cols []string, colPos []int) *index {
	return &index{name: name, cols: cols, colPos: colPos, m: make(map[string]*bucket)}
}

// single reports whether this is a one-column index (range/order
// capable).
func (idx *index) single() bool { return len(idx.colPos) == 1 }

// writeTupleKey appends one component of a composite hash key: the
// value's hashKey, length-prefixed so concatenations never collide
// across column boundaries. keyOf and rowKey both encode through it,
// keeping lookup and maintenance keys byte-identical.
func writeTupleKey(sb *strings.Builder, v Value) {
	k := v.hashKey()
	sb.WriteString(strconv.Itoa(len(k)))
	sb.WriteByte(':')
	sb.WriteString(k)
}

// keyOf builds the unambiguous hash key of a value tuple.
func keyOf(vals []Value) string {
	if len(vals) == 1 {
		return vals[0].hashKey()
	}
	var sb strings.Builder
	for _, v := range vals {
		writeTupleKey(&sb, v)
	}
	return sb.String()
}

// rowKey extracts the indexed columns' tuple key from a full row.
func (idx *index) rowKey(row []Value) string {
	if idx.single() {
		return row[idx.colPos[0]].hashKey()
	}
	var sb strings.Builder
	for _, p := range idx.colPos {
		writeTupleKey(&sb, row[p])
	}
	return sb.String()
}

// insert records id under the row's indexed tuple. Only used while
// bulk-building a fresh (unpublished) index; published indexes mutate
// through editIndex's copy-on-write path.
func (idx *index) insert(row []Value, id int64) {
	key := idx.rowKey(row)
	b, ok := idx.m[key]
	if !ok {
		vals := make([]Value, len(idx.colPos))
		for i, p := range idx.colPos {
			vals[i] = row[p]
		}
		b = &bucket{vals: vals}
		idx.m[key] = b
	}
	b.ids = append(b.ids, id)
}

// lookupEq returns the ids matching a value tuple exactly. vals must
// have one value per indexed column, in index column order.
func (idx *index) lookupEq(vals []Value) []int64 {
	if b, ok := idx.m[keyOf(vals)]; ok {
		return b.ids
	}
	return nil
}

// ensureSorted (re)builds the ordered bucket list and returns it.
// Safe for concurrent readers: the rebuild is serialized by sortMu,
// rebuilds are idempotent, and the bucket set itself never changes
// after publication.
func (idx *index) ensureSorted() []*bucket {
	idx.sortMu.Lock()
	defer idx.sortMu.Unlock()
	if idx.sorted != nil {
		return idx.sorted
	}
	s := make([]*bucket, 0, len(idx.m))
	for _, b := range idx.m {
		s = append(s, b)
	}
	sort.Slice(s, func(i, j int) bool { return compare(s[i].vals[0], s[j].vals[0]) < 0 })
	idx.sorted = s
	return s
}

// lookupRange returns the ids of every bucket within the given bounds.
// A nil bound is unbounded on that side. The result is a fresh slice in
// arbitrary bucket order; callers re-evaluate the full predicate and
// sort, so over-approximation is harmless.
func (idx *index) lookupRange(lo *Value, loInc bool, hi *Value, hiInc bool) []int64 {
	s := idx.ensureSorted()
	start := 0
	if lo != nil {
		start = sort.Search(len(s), func(i int) bool {
			c := compare(s[i].vals[0], *lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(s)
	if hi != nil {
		end = sort.Search(len(s), func(i int) bool {
			c := compare(s[i].vals[0], *hi)
			if hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	if end < start { // contradictory bounds select nothing
		end = start
	}
	var out []int64
	for _, b := range s[start:end] {
		out = append(out, b.ids...)
	}
	return out
}

// orderIDs reorders matched row ids into an index's value order —
// buckets ascending (or descending) by compare, ids ascending within
// each distinct value — which is exactly what the stable result sort
// over insertion-ordered rows produces, so serving ORDER BY from the
// index is output-identical to sorting. Across shards the per-shard
// sorted bucket lists are merged; buckets comparing equal in different
// shards combine, their matched ids interleaved in ascending id
// (insertion) order, preserving the stable sort's tie order.
func (t *tableData) orderIDs(key string, ids []int64, desc bool, scr *sortScratch) []int64 {
	var want map[int64]bool
	if scr != nil {
		if scr.want == nil {
			scr.want = make(map[int64]bool, len(ids))
		} else {
			clear(scr.want)
		}
		want = scr.want
	} else {
		want = make(map[int64]bool, len(ids))
	}
	for _, id := range ids {
		want[id] = true
	}
	lists := make([][]*bucket, len(t.shards))
	heads := make([]int, len(t.shards))
	for s, sh := range t.shards {
		lists[s] = sh.indexes[key].ensureSorted()
		if desc {
			heads[s] = len(lists[s]) - 1
		}
	}
	// The per-shard lists ascend; cursors walk forward for ASC and
	// backward for DESC.
	live := func(s int) bool {
		if desc {
			return heads[s] >= 0
		}
		return heads[s] < len(lists[s])
	}
	out := make([]int64, 0, len(ids))
	var group []int64
	for {
		best := -1
		for s := range lists {
			if !live(s) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			c := compare(lists[s][heads[s]].vals[0], lists[best][heads[best]].vals[0])
			if (!desc && c < 0) || (desc && c > 0) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		bv := lists[best][heads[best]].vals[0]
		group = group[:0]
		for s := range lists {
			if live(s) && compare(lists[s][heads[s]].vals[0], bv) == 0 {
				for _, id := range lists[s][heads[s]].ids {
					if want[id] {
						group = append(group, id)
					}
				}
				if desc {
					heads[s]--
				} else {
					heads[s]++
				}
			}
		}
		// A bucket's id order can drift from insertion order after
		// UPDATEs (remove + re-insert); restore it so ties keep the
		// stable-sort tie order.
		sort.Slice(group, func(i, j int) bool { return group[i] < group[j] })
		out = append(out, group...)
	}
	return out
}

// New creates an empty database with the default shard count.
func New() *DB { return NewWithShards(DefaultShards) }

// NewWithShards creates an empty database whose tables are hash-split
// into n shards (clamped to [1, MaxShards]). One shard reproduces the
// historical unsharded engine exactly; the differential tests pin the
// two configurations against each other.
func NewWithShards(n int) *DB {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	db := &DB{
		nshards:   n,
		locks:     make(map[string]*tableLocks),
		stmtCache: make(map[string]cachedStmt),
	}
	db.state.Store(&dbState{tables: make(map[string]*tableData)})
	return db
}

// NumShards reports the configured shard count.
func (db *DB) NumShards() int { return db.nshards }

// read takes an MVCC snapshot: one atomic load, no locks. Everything
// reachable from the returned state is immutable.
func (db *DB) read() *dbState {
	db.snapshots.Add(1)
	return db.state.Load()
}

// QueryCount reports how many statements have executed, which the
// catalog layer uses to charge simulated database-access time.
func (db *DB) QueryCount() int64 { return db.queryCount.Load() }

// RowsScanned reports the cumulative number of candidate rows the
// WHERE evaluator examined. Together with QueryCount it exposes
// whether a statement was answered from an index (few candidates) or a
// full table scan (all rows).
func (db *DB) RowsScanned() int64 { return db.rowsScanned.Load() }

// IndexHits reports how many statements obtained their candidate rows
// from an index (equality or range) instead of a full scan.
func (db *DB) IndexHits() int64 { return db.indexHits.Load() }

// OrderSkips reports how many SELECTs had their ORDER BY served from
// an index's value order instead of sorting the result rows.
func (db *DB) OrderSkips() int64 { return db.orderSkips.Load() }

// PlanCounts reports how many statements obtained candidates from an
// equality index probe, an index range window, and a full table scan,
// respectively.
func (db *DB) PlanCounts() (eq, rng, scan int64) {
	return db.planEqCount.Load(), db.planRangeCount.Load(), db.planScanCount.Load()
}

// ShardPlanCounts splits the same statements by shard targeting:
// single is plans that read exactly one shard (an equality probe whose
// tuple binds the shard column, or any plan on a 1-shard database);
// scatter is plans that merge every shard.
func (db *DB) ShardPlanCounts() (single, scatter int64) {
	return db.planSingleShard.Load(), db.planScatter.Load()
}

// Stats is one consistent view of every DB counter.
type Stats struct {
	Queries     int64
	RowsScanned int64
	IndexHits   int64
	OrderSkips  int64

	PlanEq          int64
	PlanRange       int64
	PlanScan        int64
	PlanSingleShard int64
	PlanScatter     int64

	Snapshots  int64
	Commits    int64
	ShardWaits int64
}

func (db *DB) loadStats() Stats {
	return Stats{
		Queries:         db.queryCount.Load(),
		RowsScanned:     db.rowsScanned.Load(),
		IndexHits:       db.indexHits.Load(),
		OrderSkips:      db.orderSkips.Load(),
		PlanEq:          db.planEqCount.Load(),
		PlanRange:       db.planRangeCount.Load(),
		PlanScan:        db.planScanCount.Load(),
		PlanSingleShard: db.planSingleShard.Load(),
		PlanScatter:     db.planScatter.Load(),
		Snapshots:       db.snapshots.Load(),
		Commits:         db.commits.Load(),
		ShardWaits:      db.shardWaits.Load(),
	}
}

// StatsSnapshot returns a stable snapshot of the counters: it re-reads
// until two consecutive reads agree, so a caller comparing counter
// deltas around a quiescent point cannot observe a half-updated set
// even while other statements are in flight.
func (db *DB) StatsSnapshot() Stats {
	s := db.loadStats()
	for {
		s2 := db.loadStats()
		if s2 == s {
			return s
		}
		s = s2
	}
}

// Rows is a query result: column labels plus row data.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len reports the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// prepare parses src, consulting the shared statement cache.
func (db *DB) prepare(src string) (statement, int, error) {
	db.stmtMu.Lock()
	if c, ok := db.stmtCache[src]; ok {
		db.stmtMu.Unlock()
		return c.stmt, c.nparams, nil
	}
	db.stmtMu.Unlock()
	stmt, nparams, err := parse(src)
	if err != nil {
		return nil, 0, err
	}
	db.stmtMu.Lock()
	db.stmtCache[src] = cachedStmt{stmt, nparams}
	db.stmtMu.Unlock()
	return stmt, nparams, nil
}

func convertArgs(nparams int, args []any) ([]Value, error) {
	if len(args) != nparams {
		return nil, fmt.Errorf("metadb: statement has %d parameters, got %d arguments", nparams, len(args))
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := GoValue(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// Exec runs a statement that returns no rows (DDL, INSERT, UPDATE,
// DELETE) and reports the number of affected rows.
func (db *DB) Exec(src string, args ...any) (int, error) {
	stmt, nparams, err := db.prepare(src)
	if err != nil {
		return 0, err
	}
	params, err := convertArgs(nparams, args)
	if err != nil {
		return 0, err
	}
	return db.execStmt(stmt, params)
}

func (db *DB) execStmt(stmt statement, params []Value) (int, error) {
	db.queryCount.Add(1)
	switch s := stmt.(type) {
	case createTableStmt:
		return 0, db.execCreateTable(s)
	case createIndexStmt:
		return 0, db.execCreateIndex(s)
	case dropTableStmt:
		return 0, db.execDropTable(s)
	case insertStmt:
		return db.execInsert(s, params)
	case updateStmt:
		return db.execUpdate(s, params)
	case deleteStmt:
		return db.execDelete(s, params)
	case selectStmt:
		return 0, fmt.Errorf("metadb: use Query for SELECT")
	}
	return 0, fmt.Errorf("metadb: unhandled statement type %T", stmt)
}

// Query runs a SELECT (or EXPLAIN SELECT, whose rows are the chosen
// access plan) and returns its rows.
func (db *DB) Query(src string, args ...any) (*Rows, error) {
	stmt, nparams, err := db.prepare(src)
	if err != nil {
		return nil, err
	}
	params, err := convertArgs(nparams, args)
	if err != nil {
		return nil, err
	}
	return db.queryStmt(stmt, params, nil)
}

func (db *DB) queryStmt(stmt statement, params []Value, scr *sortScratch) (*Rows, error) {
	switch s := stmt.(type) {
	case selectStmt:
		db.queryCount.Add(1)
		return db.execSelect(db.read(), s, params, scr)
	case explainStmt:
		return db.execExplain(db.read(), s, params)
	}
	return nil, fmt.Errorf("metadb: Query requires a SELECT statement")
}

// Explain reports the access plan a SELECT would use, without running
// it: the plan line, the shard targeting, and an estimated-rows line.
// Equivalent to Query("EXPLAIN "+src, ...).
func (db *DB) Explain(src string, args ...any) (*Rows, error) {
	return db.Query("EXPLAIN "+src, args...)
}

// execExplain resolves the wrapped SELECT's plan against the snapshot.
// It shares planFor/runPlan with execution, so the printed plan cannot
// diverge from the executed one; the estimate is the candidate count
// the plan yields right now (the re-evaluation of the full predicate
// may keep fewer rows).
func (db *DB) execExplain(st *dbState, s explainStmt, params []Value) (*Rows, error) {
	t, ok := st.tables[normalizeIdent(s.sel.table)]
	if !ok {
		return nil, fmt.Errorf("metadb: no such table %q", s.sel.table)
	}
	plan := t.planFor(s.sel.where, params)
	cands, _ := t.runPlan(plan)
	lines := []string{
		plan.String(),
		fmt.Sprintf("shards: %d of %d", t.shardsTouched(plan), len(t.shards)),
		fmt.Sprintf("estimate: scan %d of %d row(s)", len(cands), t.rowCount()),
	}
	if len(s.sel.orderBy) == 1 {
		if idx, ok := t.shards[0].indexes[normalizeIdent(s.sel.orderBy[0].col)]; ok && idx.single() {
			lines = append(lines, fmt.Sprintf("order by %s served from index %s (no sort)",
				s.sel.orderBy[0].col, idx.name))
		}
	}
	rows := &Rows{Columns: []string{"plan"}}
	for _, l := range lines {
		rows.Data = append(rows.Data, []Value{Text(l)})
	}
	return rows, nil
}

// QueryRow runs a SELECT expected to produce at most one row; it
// returns (nil, nil) when no row matches.
func (db *DB) QueryRow(src string, args ...any) ([]Value, error) {
	rows, err := db.Query(src, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	return rows.Data[0], nil
}

// TableNames lists tables in lexical order.
func (db *DB) TableNames() []string {
	st := db.state.Load()
	names := make([]string, 0, len(st.tables))
	for n := range st.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Columns reports a table's column names in declaration order.
func (db *DB) Columns(tableName string) ([]string, error) {
	st := db.state.Load()
	t, ok := st.tables[normalizeIdent(tableName)]
	if !ok {
		return nil, fmt.Errorf("metadb: no such table %q", tableName)
	}
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.name
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

// evalCtx binds an expression to an optional current row.
type evalCtx struct {
	t      *tableData
	row    []Value
	params []Value
}

func (ctx *evalCtx) eval(e expr) (Value, error) {
	switch x := e.(type) {
	case litExpr:
		return x.v, nil
	case paramExpr:
		return ctx.params[x.idx], nil
	case colExpr:
		if ctx.t == nil || ctx.row == nil {
			return Value{}, fmt.Errorf("metadb: column %q referenced outside row context", x.name)
		}
		pos, ok := ctx.t.colIdx[normalizeIdent(x.name)]
		if !ok {
			return Value{}, fmt.Errorf("metadb: no column %q in table %q", x.name, ctx.t.name)
		}
		return ctx.row[pos], nil
	case isNullExpr:
		v, err := ctx.eval(x.e)
		if err != nil {
			return Value{}, err
		}
		res := v.IsNull()
		if x.negate {
			res = !res
		}
		return boolVal(res), nil
	case unaryExpr:
		v, err := ctx.eval(x.e)
		if err != nil {
			return Value{}, err
		}
		switch x.op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			return boolVal(!truthy(v)), nil
		case "-":
			switch v.Kind() {
			case KindInt:
				return Int(-v.AsInt()), nil
			case KindReal:
				return Real(-v.AsReal()), nil
			case KindNull:
				return Null(), nil
			}
			return Value{}, fmt.Errorf("metadb: cannot negate %s value", v.Kind())
		}
		return Value{}, fmt.Errorf("metadb: unknown unary operator %q", x.op)
	case binExpr:
		return ctx.evalBinary(x)
	}
	return Value{}, fmt.Errorf("metadb: unhandled expression %T", e)
}

func (ctx *evalCtx) evalBinary(x binExpr) (Value, error) {
	l, err := ctx.eval(x.l)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logic operators.
	switch x.op {
	case "AND":
		if !l.IsNull() && !truthy(l) {
			return boolVal(false), nil
		}
		r, err := ctx.eval(x.r)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return boolVal(truthy(l) && truthy(r)), nil
	case "OR":
		if !l.IsNull() && truthy(l) {
			return boolVal(true), nil
		}
		r, err := ctx.eval(x.r)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return boolVal(truthy(l) || truthy(r)), nil
	}
	r, err := ctx.eval(x.r)
	if err != nil {
		return Value{}, err
	}
	switch x.op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c := compare(l, r)
		var res bool
		switch x.op {
		case "=":
			res = c == 0
		case "!=":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return boolVal(res), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if x.op == "+" && l.Kind() == KindText && r.Kind() == KindText {
			return Text(l.AsText() + r.AsText()), nil
		}
		if !l.numeric() || !r.numeric() {
			return Value{}, fmt.Errorf("metadb: arithmetic on non-numeric values (%s %s %s)", l.Kind(), x.op, r.Kind())
		}
		if l.Kind() == KindInt && r.Kind() == KindInt && x.op != "/" {
			a, b := l.AsInt(), r.AsInt()
			switch x.op {
			case "+":
				return Int(a + b), nil
			case "-":
				return Int(a - b), nil
			case "*":
				return Int(a * b), nil
			}
		}
		a, b := l.AsReal(), r.AsReal()
		switch x.op {
		case "+":
			return Real(a + b), nil
		case "-":
			return Real(a - b), nil
		case "*":
			return Real(a * b), nil
		case "/":
			if b == 0 {
				return Null(), nil
			}
			if l.Kind() == KindInt && r.Kind() == KindInt {
				return Int(l.AsInt() / r.AsInt()), nil
			}
			return Real(a / b), nil
		}
	}
	return Value{}, fmt.Errorf("metadb: unknown operator %q", x.op)
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

func truthy(v Value) bool {
	switch v.Kind() {
	case KindInt:
		return v.AsInt() != 0
	case KindReal:
		return v.AsReal() != 0
	case KindNull:
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Plan selection
// ---------------------------------------------------------------------------

// colBound is one `col OP const` conjunct extracted from a WHERE
// clause, with OP normalized so the column is on the left.
type colBound struct {
	col string
	op  string
	e   expr
}

// flipOp mirrors a comparison when the column sits on the right-hand
// side (`5 < col` becomes `col > 5`).
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // "=" is symmetric
}

// collectBounds walks the top-level AND conjuncts of a WHERE clause and
// gathers every indexable `col OP const` comparison.
func collectBounds(where expr, bounds []colBound) []colBound {
	b, ok := where.(binExpr)
	if !ok {
		return bounds
	}
	if b.op == "AND" {
		bounds = collectBounds(b.l, bounds)
		return collectBounds(b.r, bounds)
	}
	switch b.op {
	case "=", "<", "<=", ">", ">=":
	default:
		return bounds
	}
	if c, ok := b.l.(colExpr); ok && isConstExpr(b.r) {
		bounds = append(bounds, colBound{normalizeIdent(c.name), b.op, b.r})
	} else if c, ok := b.r.(colExpr); ok && isConstExpr(b.l) {
		bounds = append(bounds, colBound{normalizeIdent(c.name), flipOp(b.op), b.l})
	}
	return bounds
}

// planKind classifies how a statement obtains its candidate rows.
type planKind int

const (
	planScan  planKind = iota // full table scan
	planEq                    // equality probe into an index's hash bucket
	planRange                 // range window over a single-column index
)

// queryPlan is the chosen access path for one WHERE clause: which
// index (if any), why, and the probe parameters. The execution path
// (runPlan) and the EXPLAIN report are both driven by this one value,
// so the plan printed is by construction the plan executed.
type queryPlan struct {
	kind   planKind
	idx    *index // shard 0's instance; nil for planScan
	key    string // index map key, valid in every shard
	reason string

	eqVals       []Value // planEq probe tuple, in idx.cols order
	lo, hi       *Value  // planRange window
	loInc, hiInc bool

	// shard is the single shard an equality probe can be narrowed to
	// when the probe tuple binds the table's shard column (every
	// matching row hashes there, so other shards provably contribute
	// nothing); -1 means the plan must merge all shards.
	shard int
}

// String renders the plan as the EXPLAIN line.
func (p queryPlan) String() string {
	switch p.kind {
	case planEq:
		return fmt.Sprintf("equality probe on index %s (%s): %s",
			p.idx.name, strings.Join(p.idx.cols, ", "), p.reason)
	case planRange:
		return fmt.Sprintf("range scan on index %s (%s): %s",
			p.idx.name, strings.Join(p.idx.cols, ", "), p.reason)
	default:
		return "full table scan: " + p.reason
	}
}

// shardsTouched reports how many shards a plan reads.
func (t *tableData) shardsTouched(p queryPlan) int {
	if p.kind == planEq && p.shard >= 0 {
		return 1
	}
	return len(t.shards)
}

// planFor chooses the access path for a WHERE clause. The index whose
// columns are all bound by equality conjuncts — the widest such index,
// so a composite (runid, dataset, timestep) index beats the
// single-column one when the probe binds all three — answers from its
// hash bucket; otherwise `<`, `<=`, `>`, `>=` conjuncts on an indexed
// column (including BETWEEN-shaped `lo <= col AND col <= hi` pairs)
// answer from a single-column index's ordered buckets. Only with no
// indexable conjunct does the full table scan remain. The candidates a
// plan yields may over-approximate; matchingIDs re-evaluates the
// complete predicate.
func (t *tableData) planFor(where expr, params []Value) queryPlan {
	bounds := collectBounds(where, nil)
	if len(bounds) == 0 {
		reason := "no WHERE clause"
		if where != nil {
			reason = "no indexable conjunct in WHERE"
		}
		return queryPlan{kind: planScan, reason: reason, shard: -1}
	}
	ctx := &evalCtx{params: params}
	// Prefer an exact equality lookup: gather the equality-bound
	// columns, then pick the widest index fully covered by them
	// (lexically smallest key on ties, for determinism).
	var eqCols map[string]Value
	for _, bd := range bounds {
		if bd.op != "=" {
			continue
		}
		v, err := ctx.eval(bd.e)
		if err != nil {
			continue
		}
		if eqCols == nil {
			eqCols = make(map[string]Value, 4)
		}
		if _, dup := eqCols[bd.col]; !dup {
			eqCols[bd.col] = v
		}
	}
	if eqCols != nil {
		var best *index
		var bestKey string
		for key, idx := range t.shards[0].indexes {
			covered := true
			for _, c := range idx.cols {
				if _, ok := eqCols[c]; !ok {
					covered = false
					break
				}
			}
			if !covered {
				continue
			}
			if best == nil || len(idx.cols) > len(best.cols) ||
				(len(idx.cols) == len(best.cols) && key < bestKey) {
				best, bestKey = idx, key
			}
		}
		if best != nil {
			vals := make([]Value, len(best.cols))
			for i, c := range best.cols {
				vals[i] = eqCols[c]
			}
			p := queryPlan{
				kind: planEq, idx: best, key: bestKey,
				reason: fmt.Sprintf("%d equality conjunct(s) cover all %d index column(s)",
					len(eqCols), len(best.cols)),
				eqVals: vals, shard: -1,
			}
			if t.shardCol >= 0 {
				for i, pos := range best.colPos {
					if pos == t.shardCol {
						p.shard = t.shardOfValue(vals[i])
						break
					}
				}
			}
			return p
		}
	}
	// Otherwise intersect the range conjuncts per indexed column and
	// scan the tightest single-column window.
	type window struct {
		lo, hi       *Value
		loInc, hiInc bool
		bounded      bool
		idx          *index
	}
	windows := make(map[string]*window)
	for _, bd := range bounds {
		idx, ok := t.shards[0].indexes[bd.col]
		if !ok {
			continue
		}
		v, err := ctx.eval(bd.e)
		if err != nil || v.IsNull() {
			continue
		}
		w := windows[bd.col]
		if w == nil {
			w = &window{idx: idx}
			windows[bd.col] = w
		}
		val := v
		switch bd.op {
		case ">", ">=":
			inc := bd.op == ">="
			if w.lo == nil || compare(val, *w.lo) > 0 || (compare(val, *w.lo) == 0 && !inc) {
				w.lo, w.loInc = &val, inc
			}
		case "<", "<=":
			inc := bd.op == "<="
			if w.hi == nil || compare(val, *w.hi) < 0 || (compare(val, *w.hi) == 0 && !inc) {
				w.hi, w.hiInc = &val, inc
			}
		}
		w.bounded = w.lo != nil || w.hi != nil
	}
	// Pick the two-sided window if one exists, else any one-sided one.
	var best *window
	for _, w := range windows {
		if !w.bounded {
			continue
		}
		if best == nil {
			best = w
			continue
		}
		if (w.lo != nil && w.hi != nil) && (best.lo == nil || best.hi == nil) {
			best = w
		}
	}
	if best == nil {
		return queryPlan{kind: planScan, reason: "range conjuncts bind no indexed column", shard: -1}
	}
	return queryPlan{
		kind: planRange, idx: best.idx, key: best.idx.cols[0],
		reason: windowReason(best.idx.cols[0], best.lo, best.loInc, best.hi, best.hiInc),
		lo:     best.lo, hi: best.hi, loInc: best.loInc, hiInc: best.hiInc,
		shard: -1,
	}
}

// windowReason describes a range window, e.g. "10 <= timestep < 20".
func windowReason(col string, lo *Value, loInc bool, hi *Value, hiInc bool) string {
	var sb strings.Builder
	if lo != nil {
		sb.WriteString(lo.String())
		if loInc {
			sb.WriteString(" <= ")
		} else {
			sb.WriteString(" < ")
		}
	}
	sb.WriteString(col)
	if hi != nil {
		if hiInc {
			sb.WriteString(" <= ")
		} else {
			sb.WriteString(" < ")
		}
		sb.WriteString(hi.String())
	}
	return sb.String()
}

// runPlan yields a plan's candidate row ids; the boolean reports
// whether they came from an index. Candidate sets are shard-count
// independent: an equality probe narrowed to one shard sees exactly
// the rows a 1-shard bucket would hold (the probe binds the shard
// column, so every matching row hashes to that shard), and
// scatter-gather plans concatenate per-shard results whose union is
// the 1-shard candidate set — which keeps RowsScanned and friends
// bit-identical across shard counts.
func (t *tableData) runPlan(p queryPlan) ([]int64, bool) {
	switch p.kind {
	case planEq:
		if p.shard >= 0 {
			return t.shards[p.shard].indexes[p.key].lookupEq(p.eqVals), true
		}
		if len(t.shards) == 1 {
			return t.shards[0].indexes[p.key].lookupEq(p.eqVals), true
		}
		var out []int64
		for _, sh := range t.shards {
			out = append(out, sh.indexes[p.key].lookupEq(p.eqVals)...)
		}
		return out, true
	case planRange:
		if len(t.shards) == 1 {
			return t.shards[0].indexes[p.key].lookupRange(p.lo, p.loInc, p.hi, p.hiInc), true
		}
		var out []int64
		for _, sh := range t.shards {
			out = append(out, sh.indexes[p.key].lookupRange(p.lo, p.loInc, p.hi, p.hiInc)...)
		}
		return out, true
	default:
		return t.globalOrder(), false
	}
}

func isConstExpr(e expr) bool {
	switch x := e.(type) {
	case litExpr, paramExpr:
		return true
	case unaryExpr:
		return isConstExpr(x.e)
	case binExpr:
		return x.op != "AND" && x.op != "OR" && isConstExpr(x.l) && isConstExpr(x.r)
	}
	return false
}

// matchingIDs evaluates the WHERE clause over candidates, preserving
// insertion order, and accounts the rows examined so callers can
// verify scans were avoided.
func (db *DB) matchingIDs(t *tableData, where expr, params []Value) ([]int64, error) {
	plan := t.planFor(where, params)
	cands, fromIndex := t.runPlan(plan)
	switch plan.kind {
	case planEq:
		db.planEqCount.Add(1)
	case planRange:
		db.planRangeCount.Add(1)
	default:
		db.planScanCount.Add(1)
	}
	if t.shardsTouched(plan) == 1 {
		db.planSingleShard.Add(1)
	} else {
		db.planScatter.Add(1)
	}
	db.rowsScanned.Add(int64(len(cands)))
	if fromIndex {
		db.indexHits.Add(1)
	}
	var out []int64
	ctx := &evalCtx{t: t, params: params}
	for _, id := range cands {
		row, ok := t.rowOf(id)
		if !ok {
			continue
		}
		if where != nil {
			ctx.row = row
			v, err := ctx.eval(where)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		out = append(out, id)
	}
	if fromIndex {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out, nil
}

// validateColumns rejects references to columns the table lacks, so
// malformed queries fail even when no rows would be scanned.
func (t *tableData) validateColumns(e expr) error {
	switch x := e.(type) {
	case nil, litExpr, paramExpr:
		return nil
	case colExpr:
		if _, ok := t.colIdx[normalizeIdent(x.name)]; !ok {
			return fmt.Errorf("metadb: no column %q in table %q", x.name, t.name)
		}
		return nil
	case binExpr:
		if err := t.validateColumns(x.l); err != nil {
			return err
		}
		return t.validateColumns(x.r)
	case unaryExpr:
		return t.validateColumns(x.e)
	case isNullExpr:
		return t.validateColumns(x.e)
	}
	return nil
}

func (db *DB) execSelect(st *dbState, s selectStmt, params []Value, scr *sortScratch) (*Rows, error) {
	t, ok := st.tables[normalizeIdent(s.table)]
	if !ok {
		return nil, fmt.Errorf("metadb: no such table %q", s.table)
	}
	if err := t.validateColumns(s.where); err != nil {
		return nil, err
	}
	for _, it := range s.items {
		if it.star {
			continue
		}
		if err := t.validateColumns(it.expr); err != nil {
			return nil, err
		}
	}
	ids, err := db.matchingIDs(t, s.where, params)
	if err != nil {
		return nil, err
	}

	// Expand the projection, replacing * with all columns.
	var items []selectItem
	aggregated := false
	for _, it := range s.items {
		if it.star {
			for _, c := range t.cols {
				items = append(items, selectItem{expr: colExpr{c.name}, name: c.name})
			}
			continue
		}
		if it.agg != "" {
			aggregated = true
		}
		items = append(items, it)
	}
	if aggregated {
		for _, it := range items {
			if it.agg == "" {
				return nil, fmt.Errorf("metadb: mixing aggregates and plain columns without GROUP BY")
			}
		}
	}

	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = it.name
	}
	res := &Rows{Columns: cols}
	ctx := &evalCtx{t: t, params: params}

	if aggregated {
		out := make([]Value, len(items))
		counts := make([]int64, len(items))
		for _, id := range ids {
			ctx.row, _ = t.rowOf(id)
			for i, it := range items {
				switch it.agg {
				case "COUNT":
					if it.expr == nil {
						counts[i]++
						continue
					}
					v, err := ctx.eval(it.expr)
					if err != nil {
						return nil, err
					}
					if !v.IsNull() {
						counts[i]++
					}
				case "MAX", "MIN":
					v, err := ctx.eval(it.expr)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						continue
					}
					if out[i].IsNull() ||
						(it.agg == "MAX" && compare(v, out[i]) > 0) ||
						(it.agg == "MIN" && compare(v, out[i]) < 0) {
						out[i] = v
					}
				}
			}
		}
		for i, it := range items {
			if it.agg == "COUNT" {
				out[i] = Int(counts[i])
			}
		}
		res.Data = [][]Value{out}
		return res, nil
	}

	// When the single sort key is the indexed column, emit rows in the
	// index's value order and skip the sort entirely (the ROADMAP's
	// ORDER-BY-from-index step); the counter lets callers verify the
	// sort was skipped.
	orderedByIndex := false
	if len(s.orderBy) == 1 {
		key := normalizeIdent(s.orderBy[0].col)
		if _, ok := t.shards[0].indexes[key]; ok {
			ids = t.orderIDs(key, ids, s.orderBy[0].desc, scr)
			orderedByIndex = true
			db.orderSkips.Add(1)
		}
	}

	for _, id := range ids {
		ctx.row, _ = t.rowOf(id)
		row := make([]Value, len(items))
		for i, it := range items {
			v, err := ctx.eval(it.expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Data = append(res.Data, row)
	}

	if len(s.orderBy) > 0 && !orderedByIndex {
		// Order by the projected column when present; otherwise fall
		// back to the source row's column value.
		keyPos := make([]int, len(s.orderBy))
		for i, k := range s.orderBy {
			if _, ok := t.colIdx[normalizeIdent(k.col)]; !ok {
				return nil, fmt.Errorf("metadb: ORDER BY unknown column %q", k.col)
			}
			keyPos[i] = -1
			for j, c := range cols {
				if normalizeIdent(c) == normalizeIdent(k.col) {
					keyPos[i] = j
					break
				}
			}
		}
		// For non-projected order columns, precompute key values.
		var extKeys [][]Value
		needExt := false
		for _, kp := range keyPos {
			if kp == -1 {
				needExt = true
			}
		}
		if needExt {
			extKeys = make([][]Value, len(ids))
			for r, id := range ids {
				row, _ := t.rowOf(id)
				keys := make([]Value, len(s.orderBy))
				for i, k := range s.orderBy {
					keys[i] = row[t.colIdx[normalizeIdent(k.col)]]
				}
				extKeys[r] = keys
			}
		}
		type sortable struct {
			row  []Value
			keys []Value
		}
		items2 := make([]sortable, len(res.Data))
		for r := range res.Data {
			keys := make([]Value, len(s.orderBy))
			for i, kp := range keyPos {
				if kp >= 0 {
					keys[i] = res.Data[r][kp]
				} else {
					keys[i] = extKeys[r][i]
				}
			}
			items2[r] = sortable{res.Data[r], keys}
		}
		sort.SliceStable(items2, func(a, b int) bool {
			for i, k := range s.orderBy {
				c := compare(items2[a].keys[i], items2[b].keys[i])
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for r := range items2 {
			res.Data[r] = items2[r].row
		}
	}

	if s.limit != nil {
		lv, err := (&evalCtx{params: params}).eval(s.limit)
		if err != nil {
			return nil, err
		}
		if lv.Kind() != KindInt {
			return nil, fmt.Errorf("metadb: LIMIT must be an integer")
		}
		n := int(lv.AsInt())
		if n < 0 {
			n = 0
		}
		if n < len(res.Data) {
			res.Data = res.Data[:n]
		}
	}
	return res, nil
}
