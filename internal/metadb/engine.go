package metadb

import (
	"fmt"
	"sort"
	"sync"
)

// DB is an embedded database instance. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table

	stmtMu    sync.Mutex
	stmtCache map[string]cachedStmt

	queryCount int64 // cumulative statements executed, for cost accounting
}

type cachedStmt struct {
	stmt    statement
	nparams int
}

// table holds rows in insertion order with optional hash indexes.
type table struct {
	name    string
	cols    []columnDef
	colIdx  map[string]int
	nextID  int64
	order   []int64 // row ids in insertion order
	rows    map[int64][]Value
	indexes map[string]*index // keyed by column name
}

type index struct {
	name   string
	column string
	colPos int
	m      map[string][]int64
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table), stmtCache: make(map[string]cachedStmt)}
}

// QueryCount reports how many statements have executed, which the
// catalog layer uses to charge simulated database-access time.
func (db *DB) QueryCount() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.queryCount
}

// Rows is a query result: column labels plus row data.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len reports the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// prepare parses src, consulting the statement cache.
func (db *DB) prepare(src string) (statement, int, error) {
	db.stmtMu.Lock()
	if c, ok := db.stmtCache[src]; ok {
		db.stmtMu.Unlock()
		return c.stmt, c.nparams, nil
	}
	db.stmtMu.Unlock()
	stmt, nparams, err := parse(src)
	if err != nil {
		return nil, 0, err
	}
	db.stmtMu.Lock()
	db.stmtCache[src] = cachedStmt{stmt, nparams}
	db.stmtMu.Unlock()
	return stmt, nparams, nil
}

func convertArgs(nparams int, args []any) ([]Value, error) {
	if len(args) != nparams {
		return nil, fmt.Errorf("metadb: statement has %d parameters, got %d arguments", nparams, len(args))
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := GoValue(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// Exec runs a statement that returns no rows (DDL, INSERT, UPDATE,
// DELETE) and reports the number of affected rows.
func (db *DB) Exec(src string, args ...any) (int, error) {
	stmt, nparams, err := db.prepare(src)
	if err != nil {
		return 0, err
	}
	params, err := convertArgs(nparams, args)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.queryCount++
	switch s := stmt.(type) {
	case createTableStmt:
		return 0, db.execCreateTable(s)
	case createIndexStmt:
		return 0, db.execCreateIndex(s)
	case dropTableStmt:
		return 0, db.execDropTable(s)
	case insertStmt:
		return db.execInsert(s, params)
	case updateStmt:
		return db.execUpdate(s, params)
	case deleteStmt:
		return db.execDelete(s, params)
	case selectStmt:
		return 0, fmt.Errorf("metadb: use Query for SELECT")
	}
	return 0, fmt.Errorf("metadb: unhandled statement type %T", stmt)
}

// Query runs a SELECT and returns its rows.
func (db *DB) Query(src string, args ...any) (*Rows, error) {
	stmt, nparams, err := db.prepare(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(selectStmt)
	if !ok {
		return nil, fmt.Errorf("metadb: Query requires a SELECT statement")
	}
	params, err := convertArgs(nparams, args)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.queryCount++
	return db.execSelect(sel, params)
}

// QueryRow runs a SELECT expected to produce at most one row; it
// returns (nil, nil) when no row matches.
func (db *DB) QueryRow(src string, args ...any) ([]Value, error) {
	rows, err := db.Query(src, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	return rows.Data[0], nil
}

// TableNames lists tables in lexical order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Columns reports a table's column names in declaration order.
func (db *DB) Columns(tableName string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[normalizeIdent(tableName)]
	if !ok {
		return nil, fmt.Errorf("metadb: no such table %q", tableName)
	}
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.name
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

func (db *DB) execCreateTable(s createTableStmt) error {
	name := normalizeIdent(s.name)
	if _, exists := db.tables[name]; exists {
		if s.ifNotExists {
			return nil
		}
		return fmt.Errorf("metadb: table %q already exists", s.name)
	}
	t := &table{
		name:    name,
		colIdx:  make(map[string]int),
		rows:    make(map[int64][]Value),
		indexes: make(map[string]*index),
	}
	for _, c := range s.cols {
		cn := normalizeIdent(c.name)
		if _, dup := t.colIdx[cn]; dup {
			return fmt.Errorf("metadb: duplicate column %q in table %q", c.name, s.name)
		}
		t.colIdx[cn] = len(t.cols)
		t.cols = append(t.cols, columnDef{cn, c.kind})
	}
	db.tables[name] = t
	return nil
}

func (db *DB) execCreateIndex(s createIndexStmt) error {
	t, ok := db.tables[normalizeIdent(s.table)]
	if !ok {
		return fmt.Errorf("metadb: no such table %q", s.table)
	}
	col := normalizeIdent(s.column)
	pos, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("metadb: no column %q in table %q", s.column, s.table)
	}
	if _, exists := t.indexes[col]; exists {
		if s.ifNotExists {
			return nil
		}
		return fmt.Errorf("metadb: index on %s(%s) already exists", s.table, s.column)
	}
	idx := &index{name: normalizeIdent(s.name), column: col, colPos: pos, m: make(map[string][]int64)}
	for _, id := range t.order {
		key := t.rows[id][pos].hashKey()
		idx.m[key] = append(idx.m[key], id)
	}
	t.indexes[col] = idx
	return nil
}

func (db *DB) execDropTable(s dropTableStmt) error {
	name := normalizeIdent(s.name)
	if _, ok := db.tables[name]; !ok {
		if s.ifExists {
			return nil
		}
		return fmt.Errorf("metadb: no such table %q", s.name)
	}
	delete(db.tables, name)
	return nil
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

// evalCtx binds an expression to an optional current row.
type evalCtx struct {
	t      *table
	row    []Value
	params []Value
}

func (ctx *evalCtx) eval(e expr) (Value, error) {
	switch x := e.(type) {
	case litExpr:
		return x.v, nil
	case paramExpr:
		return ctx.params[x.idx], nil
	case colExpr:
		if ctx.t == nil || ctx.row == nil {
			return Value{}, fmt.Errorf("metadb: column %q referenced outside row context", x.name)
		}
		pos, ok := ctx.t.colIdx[normalizeIdent(x.name)]
		if !ok {
			return Value{}, fmt.Errorf("metadb: no column %q in table %q", x.name, ctx.t.name)
		}
		return ctx.row[pos], nil
	case isNullExpr:
		v, err := ctx.eval(x.e)
		if err != nil {
			return Value{}, err
		}
		res := v.IsNull()
		if x.negate {
			res = !res
		}
		return boolVal(res), nil
	case unaryExpr:
		v, err := ctx.eval(x.e)
		if err != nil {
			return Value{}, err
		}
		switch x.op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			return boolVal(!truthy(v)), nil
		case "-":
			switch v.Kind() {
			case KindInt:
				return Int(-v.AsInt()), nil
			case KindReal:
				return Real(-v.AsReal()), nil
			case KindNull:
				return Null(), nil
			}
			return Value{}, fmt.Errorf("metadb: cannot negate %s value", v.Kind())
		}
		return Value{}, fmt.Errorf("metadb: unknown unary operator %q", x.op)
	case binExpr:
		return ctx.evalBinary(x)
	}
	return Value{}, fmt.Errorf("metadb: unhandled expression %T", e)
}

func (ctx *evalCtx) evalBinary(x binExpr) (Value, error) {
	l, err := ctx.eval(x.l)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logic operators.
	switch x.op {
	case "AND":
		if !l.IsNull() && !truthy(l) {
			return boolVal(false), nil
		}
		r, err := ctx.eval(x.r)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return boolVal(truthy(l) && truthy(r)), nil
	case "OR":
		if !l.IsNull() && truthy(l) {
			return boolVal(true), nil
		}
		r, err := ctx.eval(x.r)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return boolVal(truthy(l) || truthy(r)), nil
	}
	r, err := ctx.eval(x.r)
	if err != nil {
		return Value{}, err
	}
	switch x.op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c := compare(l, r)
		var res bool
		switch x.op {
		case "=":
			res = c == 0
		case "!=":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return boolVal(res), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if x.op == "+" && l.Kind() == KindText && r.Kind() == KindText {
			return Text(l.AsText() + r.AsText()), nil
		}
		if !l.numeric() || !r.numeric() {
			return Value{}, fmt.Errorf("metadb: arithmetic on non-numeric values (%s %s %s)", l.Kind(), x.op, r.Kind())
		}
		if l.Kind() == KindInt && r.Kind() == KindInt && x.op != "/" {
			a, b := l.AsInt(), r.AsInt()
			switch x.op {
			case "+":
				return Int(a + b), nil
			case "-":
				return Int(a - b), nil
			case "*":
				return Int(a * b), nil
			}
		}
		a, b := l.AsReal(), r.AsReal()
		switch x.op {
		case "+":
			return Real(a + b), nil
		case "-":
			return Real(a - b), nil
		case "*":
			return Real(a * b), nil
		case "/":
			if b == 0 {
				return Null(), nil
			}
			if l.Kind() == KindInt && r.Kind() == KindInt {
				return Int(l.AsInt() / r.AsInt()), nil
			}
			return Real(a / b), nil
		}
	}
	return Value{}, fmt.Errorf("metadb: unknown operator %q", x.op)
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

func truthy(v Value) bool {
	switch v.Kind() {
	case KindInt:
		return v.AsInt() != 0
	case KindReal:
		return v.AsReal() != 0
	case KindNull:
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

func (db *DB) execInsert(s insertStmt, params []Value) (int, error) {
	t, ok := db.tables[normalizeIdent(s.table)]
	if !ok {
		return 0, fmt.Errorf("metadb: no such table %q", s.table)
	}
	colPos := make([]int, 0, len(t.cols))
	if len(s.cols) == 0 {
		for i := range t.cols {
			colPos = append(colPos, i)
		}
	} else {
		for _, c := range s.cols {
			pos, ok := t.colIdx[normalizeIdent(c)]
			if !ok {
				return 0, fmt.Errorf("metadb: no column %q in table %q", c, s.table)
			}
			colPos = append(colPos, pos)
		}
	}
	ctx := &evalCtx{params: params}
	inserted := 0
	for _, rowExprs := range s.rows {
		if len(rowExprs) != len(colPos) {
			return inserted, fmt.Errorf("metadb: INSERT has %d values for %d columns", len(rowExprs), len(colPos))
		}
		row := make([]Value, len(t.cols))
		for i, e := range rowExprs {
			v, err := ctx.eval(e)
			if err != nil {
				return inserted, err
			}
			cv, err := coerce(v, t.cols[colPos[i]].kind)
			if err != nil {
				return inserted, fmt.Errorf("%w (column %q)", err, t.cols[colPos[i]].name)
			}
			row[colPos[i]] = cv
		}
		id := t.nextID
		t.nextID++
		t.rows[id] = row
		t.order = append(t.order, id)
		for _, idx := range t.indexes {
			key := row[idx.colPos].hashKey()
			idx.m[key] = append(idx.m[key], id)
		}
		inserted++
	}
	return inserted, nil
}

// candidateIDs returns the row ids to scan for a WHERE clause, using a
// hash index when the clause contains a top-level `col = const`
// conjunct on an indexed column; otherwise all rows.
func (t *table) candidateIDs(where expr, params []Value) ([]int64, bool) {
	var eqCols []struct {
		col string
		e   expr
	}
	var collect func(e expr)
	collect = func(e expr) {
		b, ok := e.(binExpr)
		if !ok {
			return
		}
		if b.op == "AND" {
			collect(b.l)
			collect(b.r)
			return
		}
		if b.op != "=" {
			return
		}
		if c, ok := b.l.(colExpr); ok && isConstExpr(b.r) {
			eqCols = append(eqCols, struct {
				col string
				e   expr
			}{normalizeIdent(c.name), b.r})
		} else if c, ok := b.r.(colExpr); ok && isConstExpr(b.l) {
			eqCols = append(eqCols, struct {
				col string
				e   expr
			}{normalizeIdent(c.name), b.l})
		}
	}
	collect(where)
	ctx := &evalCtx{params: params}
	for _, eq := range eqCols {
		idx, ok := t.indexes[eq.col]
		if !ok {
			continue
		}
		v, err := ctx.eval(eq.e)
		if err != nil {
			continue
		}
		return idx.m[v.hashKey()], true
	}
	return t.order, false
}

func isConstExpr(e expr) bool {
	switch x := e.(type) {
	case litExpr, paramExpr:
		return true
	case unaryExpr:
		return isConstExpr(x.e)
	case binExpr:
		return x.op != "AND" && x.op != "OR" && isConstExpr(x.l) && isConstExpr(x.r)
	}
	return false
}

// matchingIDs evaluates the WHERE clause over candidates, preserving
// insertion order.
func (t *table) matchingIDs(where expr, params []Value) ([]int64, error) {
	cands, fromIndex := t.candidateIDs(where, params)
	var out []int64
	ctx := &evalCtx{t: t, params: params}
	for _, id := range cands {
		row, ok := t.rows[id]
		if !ok {
			continue
		}
		if where != nil {
			ctx.row = row
			v, err := ctx.eval(where)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		out = append(out, id)
	}
	if fromIndex {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out, nil
}

func (db *DB) execUpdate(s updateStmt, params []Value) (int, error) {
	t, ok := db.tables[normalizeIdent(s.table)]
	if !ok {
		return 0, fmt.Errorf("metadb: no such table %q", s.table)
	}
	ids, err := t.matchingIDs(s.where, params)
	if err != nil {
		return 0, err
	}
	ctx := &evalCtx{t: t, params: params}
	for _, id := range ids {
		row := t.rows[id]
		ctx.row = row
		newRow := append([]Value(nil), row...)
		for _, sc := range s.sets {
			pos, ok := t.colIdx[normalizeIdent(sc.col)]
			if !ok {
				return 0, fmt.Errorf("metadb: no column %q in table %q", sc.col, s.table)
			}
			v, err := ctx.eval(sc.val)
			if err != nil {
				return 0, err
			}
			cv, err := coerce(v, t.cols[pos].kind)
			if err != nil {
				return 0, err
			}
			newRow[pos] = cv
		}
		for _, idx := range t.indexes {
			oldKey := row[idx.colPos].hashKey()
			newKey := newRow[idx.colPos].hashKey()
			if oldKey != newKey {
				idx.remove(oldKey, id)
				idx.m[newKey] = append(idx.m[newKey], id)
			}
		}
		t.rows[id] = newRow
	}
	return len(ids), nil
}

func (idx *index) remove(key string, id int64) {
	ids := idx.m[key]
	for i, v := range ids {
		if v == id {
			idx.m[key] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(idx.m[key]) == 0 {
		delete(idx.m, key)
	}
}

func (db *DB) execDelete(s deleteStmt, params []Value) (int, error) {
	t, ok := db.tables[normalizeIdent(s.table)]
	if !ok {
		return 0, fmt.Errorf("metadb: no such table %q", s.table)
	}
	ids, err := t.matchingIDs(s.where, params)
	if err != nil {
		return 0, err
	}
	doomed := make(map[int64]bool, len(ids))
	for _, id := range ids {
		doomed[id] = true
		row := t.rows[id]
		for _, idx := range t.indexes {
			idx.remove(row[idx.colPos].hashKey(), id)
		}
		delete(t.rows, id)
	}
	if len(doomed) > 0 {
		kept := t.order[:0]
		for _, id := range t.order {
			if !doomed[id] {
				kept = append(kept, id)
			}
		}
		t.order = kept
	}
	return len(ids), nil
}

// validateColumns rejects references to columns the table lacks, so
// malformed queries fail even when no rows would be scanned.
func (t *table) validateColumns(e expr) error {
	switch x := e.(type) {
	case nil, litExpr, paramExpr:
		return nil
	case colExpr:
		if _, ok := t.colIdx[normalizeIdent(x.name)]; !ok {
			return fmt.Errorf("metadb: no column %q in table %q", x.name, t.name)
		}
		return nil
	case binExpr:
		if err := t.validateColumns(x.l); err != nil {
			return err
		}
		return t.validateColumns(x.r)
	case unaryExpr:
		return t.validateColumns(x.e)
	case isNullExpr:
		return t.validateColumns(x.e)
	}
	return nil
}

func (db *DB) execSelect(s selectStmt, params []Value) (*Rows, error) {
	t, ok := db.tables[normalizeIdent(s.table)]
	if !ok {
		return nil, fmt.Errorf("metadb: no such table %q", s.table)
	}
	if err := t.validateColumns(s.where); err != nil {
		return nil, err
	}
	for _, it := range s.items {
		if it.star {
			continue
		}
		if err := t.validateColumns(it.expr); err != nil {
			return nil, err
		}
	}
	ids, err := t.matchingIDs(s.where, params)
	if err != nil {
		return nil, err
	}

	// Expand the projection, replacing * with all columns.
	var items []selectItem
	aggregated := false
	for _, it := range s.items {
		if it.star {
			for _, c := range t.cols {
				items = append(items, selectItem{expr: colExpr{c.name}, name: c.name})
			}
			continue
		}
		if it.agg != "" {
			aggregated = true
		}
		items = append(items, it)
	}
	if aggregated {
		for _, it := range items {
			if it.agg == "" {
				return nil, fmt.Errorf("metadb: mixing aggregates and plain columns without GROUP BY")
			}
		}
	}

	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = it.name
	}
	res := &Rows{Columns: cols}
	ctx := &evalCtx{t: t, params: params}

	if aggregated {
		out := make([]Value, len(items))
		counts := make([]int64, len(items))
		for _, id := range ids {
			ctx.row = t.rows[id]
			for i, it := range items {
				switch it.agg {
				case "COUNT":
					if it.expr == nil {
						counts[i]++
						continue
					}
					v, err := ctx.eval(it.expr)
					if err != nil {
						return nil, err
					}
					if !v.IsNull() {
						counts[i]++
					}
				case "MAX", "MIN":
					v, err := ctx.eval(it.expr)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						continue
					}
					if out[i].IsNull() ||
						(it.agg == "MAX" && compare(v, out[i]) > 0) ||
						(it.agg == "MIN" && compare(v, out[i]) < 0) {
						out[i] = v
					}
				}
			}
		}
		for i, it := range items {
			if it.agg == "COUNT" {
				out[i] = Int(counts[i])
			}
		}
		res.Data = [][]Value{out}
		return res, nil
	}

	for _, id := range ids {
		ctx.row = t.rows[id]
		row := make([]Value, len(items))
		for i, it := range items {
			v, err := ctx.eval(it.expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Data = append(res.Data, row)
	}

	if len(s.orderBy) > 0 {
		// Order by the projected column when present; otherwise fall
		// back to the source row's column value.
		keyPos := make([]int, len(s.orderBy))
		for i, k := range s.orderBy {
			if _, ok := t.colIdx[normalizeIdent(k.col)]; !ok {
				return nil, fmt.Errorf("metadb: ORDER BY unknown column %q", k.col)
			}
			keyPos[i] = -1
			for j, c := range cols {
				if normalizeIdent(c) == normalizeIdent(k.col) {
					keyPos[i] = j
					break
				}
			}
		}
		// For non-projected order columns, precompute key values.
		var extKeys [][]Value
		needExt := false
		for _, kp := range keyPos {
			if kp == -1 {
				needExt = true
			}
		}
		if needExt {
			extKeys = make([][]Value, len(ids))
			for r, id := range ids {
				row := t.rows[id]
				keys := make([]Value, len(s.orderBy))
				for i, k := range s.orderBy {
					keys[i] = row[t.colIdx[normalizeIdent(k.col)]]
				}
				extKeys[r] = keys
			}
		}
		type sortable struct {
			row  []Value
			keys []Value
		}
		items2 := make([]sortable, len(res.Data))
		for r := range res.Data {
			keys := make([]Value, len(s.orderBy))
			for i, kp := range keyPos {
				if kp >= 0 {
					keys[i] = res.Data[r][kp]
				} else {
					keys[i] = extKeys[r][i]
				}
			}
			items2[r] = sortable{res.Data[r], keys}
		}
		sort.SliceStable(items2, func(a, b int) bool {
			for i, k := range s.orderBy {
				c := compare(items2[a].keys[i], items2[b].keys[i])
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for r := range items2 {
			res.Data[r] = items2[r].row
		}
	}

	if s.limit != nil {
		lv, err := (&evalCtx{params: params}).eval(s.limit)
		if err != nil {
			return nil, err
		}
		if lv.Kind() != KindInt {
			return nil, fmt.Errorf("metadb: LIMIT must be an integer")
		}
		n := int(lv.AsInt())
		if n < 0 {
			n = 0
		}
		if n < len(res.Data) {
			res.Data = res.Data[:n]
		}
	}
	return res, nil
}
