package metadb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, withIndex bool, rows int) *DB {
	b.Helper()
	db := New()
	if _, err := db.Exec(`CREATE TABLE t (k INTEGER, s TEXT, v REAL)`); err != nil {
		b.Fatal(err)
	}
	if withIndex {
		if _, err := db.Exec(`CREATE INDEX tk ON t (k)`); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?)`, i, fmt.Sprintf("row%d", i), float64(i)*1.5); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := benchDB(b, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?)`, i, "bench", 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectByKeyIndexed(b *testing.B) {
	db := benchDB(b, true, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT s FROM t WHERE k = ?`, i%10_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectByKeyScan(b *testing.B) {
	db := benchDB(b, false, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT s FROM t WHERE k = ?`, i%10_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseStatement(b *testing.B) {
	const q = `SELECT a, b FROM t WHERE x = ? AND y > 3 ORDER BY a DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, _, err := parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderBy(b *testing.B) {
	db := benchDB(b, false, 5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT k FROM t ORDER BY v DESC LIMIT 100`); err != nil {
			b.Fatal(err)
		}
	}
}
