package metadb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func rowsString(r *Rows) string {
	var b bytes.Buffer
	for _, row := range r.Data {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// twinDBs builds two identical databases, one with an index on k and
// one without, so index-served ORDER BY can be differential-tested
// against the sorting path.
func twinDBs(t *testing.T, n int, seed int64) (indexed, plain *DB) {
	t.Helper()
	indexed, plain = New(), New()
	rng := rand.New(rand.NewSource(seed))
	ddl := `CREATE TABLE obs (k INTEGER, label TEXT)`
	mustExec(t, indexed, ddl)
	mustExec(t, indexed, `CREATE INDEX obs_k ON obs (k)`)
	mustExec(t, plain, ddl)
	for i := 0; i < n; i++ {
		// Small key domain forces duplicate keys, exercising tie order.
		k := rng.Intn(12)
		label := fmt.Sprintf("row%d", i)
		if i%17 == 0 {
			mustExec(t, indexed, `INSERT INTO obs VALUES (NULL, ?)`, label)
			mustExec(t, plain, `INSERT INTO obs VALUES (NULL, ?)`, label)
			continue
		}
		mustExec(t, indexed, `INSERT INTO obs VALUES (?, ?)`, int64(k), label)
		mustExec(t, plain, `INSERT INTO obs VALUES (?, ?)`, int64(k), label)
	}
	return indexed, plain
}

// TestOrderByServedFromIndex checks that a single-key ORDER BY on the
// indexed column skips the sort (counter moves) while producing output
// identical to the sorting path, for ASC, DESC, WHERE filters, and
// LIMIT.
func TestOrderByServedFromIndex(t *testing.T) {
	indexed, plain := twinDBs(t, 300, 7)
	queries := []string{
		`SELECT k, label FROM obs ORDER BY k`,
		`SELECT k, label FROM obs ORDER BY k DESC`,
		`SELECT label FROM obs ORDER BY k`, // key not projected
		`SELECT k, label FROM obs WHERE k >= 4 AND k <= 9 ORDER BY k`,
		`SELECT k, label FROM obs WHERE label != 'row5' ORDER BY k DESC`,
		`SELECT k, label FROM obs ORDER BY k LIMIT 10`,
		`SELECT k, label FROM obs WHERE k = 3 ORDER BY k`,
	}
	for _, q := range queries {
		before := indexed.OrderSkips()
		got := rowsString(mustQuery(t, indexed, q))
		if indexed.OrderSkips() != before+1 {
			t.Errorf("%s: sort was not skipped (OrderSkips %d -> %d)", q, before, indexed.OrderSkips())
		}
		want := rowsString(mustQuery(t, plain, q))
		if got != want {
			t.Errorf("%s:\nindexed path:\n%splain sort:\n%s", q, got, want)
		}
	}
	if skips := plain.OrderSkips(); skips != 0 {
		t.Errorf("unindexed DB skipped %d sorts", skips)
	}
}

// TestOrderByIndexIneligible checks the fallbacks: multi-key ORDER BY
// and unindexed sort keys still sort (no counter movement, correct
// output).
func TestOrderByIndexIneligible(t *testing.T) {
	indexed, plain := twinDBs(t, 120, 11)
	for _, q := range []string{
		`SELECT k, label FROM obs ORDER BY k, label`,
		`SELECT k, label FROM obs ORDER BY label`,
	} {
		before := indexed.OrderSkips()
		got := rowsString(mustQuery(t, indexed, q))
		if indexed.OrderSkips() != before {
			t.Errorf("%s: expected a real sort, but it was skipped", q)
		}
		if want := rowsString(mustQuery(t, plain, q)); got != want {
			t.Errorf("%s: output diverged", q)
		}
	}
}

// TestOrderByIndexAfterMutation mutates indexed rows (UPDATE moves
// rows between buckets, DELETE empties some) and re-checks that
// index-served ordering still matches the sorting path, including the
// stable tie order UPDATEs can disturb inside buckets.
func TestOrderByIndexAfterMutation(t *testing.T) {
	indexed, plain := twinDBs(t, 200, 13)
	for _, db := range []*DB{indexed, plain} {
		mustExec(t, db, `UPDATE obs SET k = 5 WHERE k = 2`)
		mustExec(t, db, `UPDATE obs SET k = 0 WHERE label = 'row100'`)
		mustExec(t, db, `DELETE FROM obs WHERE k = 7`)
	}
	for _, q := range []string{
		`SELECT k, label FROM obs ORDER BY k`,
		`SELECT k, label FROM obs ORDER BY k DESC`,
	} {
		got := rowsString(mustQuery(t, indexed, q))
		want := rowsString(mustQuery(t, plain, q))
		if got != want {
			t.Errorf("%s after mutation:\nindexed path:\n%splain sort:\n%s", q, got, want)
		}
	}
}

// TestPersistRebuildsIndexState is the round-trip guard for the run
// bundle's catalog snapshot: after Save and Load into a fresh DB,
// equality and range lookups still come from indexes, ORDER BY is
// still served from the rebuilt ordered-index state, results are
// identical, and the rebuilt indexes stay consistent under further
// mutation.
func TestPersistRebuildsIndexState(t *testing.T) {
	orig, plain := twinDBs(t, 250, 17)

	queries := []string{
		`SELECT k, label FROM obs ORDER BY k`,
		`SELECT k, label FROM obs ORDER BY k DESC`,
		`SELECT k, label FROM obs WHERE k = 4 ORDER BY k`,
		`SELECT k, label FROM obs WHERE k >= 3 AND k <= 8 ORDER BY k`,
	}
	var want []string
	for _, q := range queries {
		want = append(want, rowsString(mustQuery(t, orig, q)))
	}

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}

	// Every query must be answered from the rebuilt index: candidate
	// rows from index lookups where a WHERE exists, and the sort
	// skipped for all of them.
	hits0, skips0 := loaded.IndexHits(), loaded.OrderSkips()
	for i, q := range queries {
		if got := rowsString(mustQuery(t, loaded, q)); got != want[i] {
			t.Errorf("after Load, %s:\ngot:\n%swant:\n%s", q, got, want[i])
		}
	}
	if got := loaded.OrderSkips() - skips0; got != int64(len(queries)) {
		t.Errorf("loaded DB skipped %d sorts, want %d", got, len(queries))
	}
	// The two WHERE-bearing queries (equality + range) must hit the index.
	if got := loaded.IndexHits() - hits0; got != 2 {
		t.Errorf("loaded DB had %d index hits, want 2", got)
	}

	// The rebuilt index must stay consistent under further mutation.
	for _, db := range []*DB{loaded, plain} {
		mustExec(t, db, `INSERT INTO obs VALUES (6, 'post-load'), (1, 'post-load2')`)
		mustExec(t, db, `UPDATE obs SET k = 9 WHERE k = 0`)
		mustExec(t, db, `DELETE FROM obs WHERE k = 5`)
	}
	for _, q := range queries {
		got := rowsString(mustQuery(t, loaded, q))
		ref := rowsString(mustQuery(t, plain, q))
		if got != ref {
			t.Errorf("after Load+mutation, %s diverged:\ngot:\n%swant:\n%s", q, got, ref)
		}
	}
}
