package metadb

import (
	"fmt"
	"sync"
	"testing"
)

// rangeDB builds a 1000-row table with an index on ts.
func rangeDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE runs (id INTEGER, ts INTEGER, name TEXT)")
	mustExec(t, db, "CREATE INDEX runs_ts ON runs(ts)")
	for i := 0; i < 1000; i++ {
		mustExec(t, db, "INSERT INTO runs (id, ts, name) VALUES (?, ?, ?)",
			i, i*10, fmt.Sprintf("run%d", i))
	}
	return db
}

func queryIDs(t *testing.T, db *DB, sql string, args ...any) []int64 {
	t.Helper()
	rows := mustQuery(t, db, sql, args...)
	out := make([]int64, rows.Len())
	for i, r := range rows.Data {
		out[i] = r[0].AsInt()
	}
	return out
}

func TestRangePredicatesUseIndex(t *testing.T) {
	db := rangeDB(t)
	cases := []struct {
		sql  string
		args []any
		want int // expected row count
	}{
		{"SELECT id FROM runs WHERE ts < 100", nil, 10},
		{"SELECT id FROM runs WHERE ts <= 100", nil, 11},
		{"SELECT id FROM runs WHERE ts > 9900", nil, 9},
		{"SELECT id FROM runs WHERE ts >= 9900", nil, 10},
		{"SELECT id FROM runs WHERE ts >= 500 AND ts < 600", nil, 10},
		{"SELECT id FROM runs WHERE ts >= ? AND ts <= ?", []any{100, 190}, 10},
		{"SELECT id FROM runs WHERE 100 > ts", nil, 10}, // column on the right
	}
	for _, tc := range cases {
		before := db.RowsScanned()
		hitsBefore := db.IndexHits()
		got := queryIDs(t, db, tc.sql, tc.args...)
		if len(got) != tc.want {
			t.Errorf("%s: got %d rows, want %d", tc.sql, len(got), tc.want)
		}
		scanned := db.RowsScanned() - before
		if scanned >= 1000 {
			t.Errorf("%s: scanned %d candidate rows, want an index-bounded scan", tc.sql, scanned)
		}
		if db.IndexHits() != hitsBefore+1 {
			t.Errorf("%s: expected an index hit", tc.sql)
		}
	}
}

func TestRangeResultsMatchFullScan(t *testing.T) {
	db := rangeDB(t)
	// An identical table without the index gives the ground truth.
	mustExec(t, db, "CREATE TABLE plain (id INTEGER, ts INTEGER, name TEXT)")
	for i := 0; i < 1000; i++ {
		mustExec(t, db, "INSERT INTO plain (id, ts, name) VALUES (?, ?, ?)",
			i, i*10, fmt.Sprintf("run%d", i))
	}
	for _, where := range []string{
		"ts < 555", "ts <= 550", "ts > 9000", "ts >= 9000 AND ts < 9500",
		"ts >= 120 AND ts <= 120", "ts > 10000000", "ts < 0",
		"ts > 500 AND ts < 300", // contradictory bounds: empty, no panic
	} {
		idx := queryIDs(t, db, "SELECT id FROM runs WHERE "+where+" ORDER BY id")
		plain := queryIDs(t, db, "SELECT id FROM plain WHERE "+where+" ORDER BY id")
		if len(idx) != len(plain) {
			t.Fatalf("WHERE %s: indexed %d rows, scan %d rows", where, len(idx), len(plain))
		}
		for i := range idx {
			if idx[i] != plain[i] {
				t.Fatalf("WHERE %s: row %d differs (%d vs %d)", where, i, idx[i], plain[i])
			}
		}
	}
}

func TestUnindexedRangeStillScans(t *testing.T) {
	db := rangeDB(t)
	before := db.RowsScanned()
	got := queryIDs(t, db, "SELECT id FROM runs WHERE id < 10")
	if len(got) != 10 {
		t.Fatalf("got %d rows", len(got))
	}
	if scanned := db.RowsScanned() - before; scanned != 1000 {
		t.Fatalf("unindexed predicate scanned %d rows, want full scan of 1000", scanned)
	}
}

// TestConcurrentRangeQueries races many readers over one lazily-built
// range index (run under -race to validate the rebuild serialization).
func TestConcurrentRangeQueries(t *testing.T) {
	db := rangeDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lo := (g*50 + i) % 900
				rows, err := db.Query("SELECT id FROM runs WHERE ts >= ? AND ts < ?", lo*10, (lo+10)*10)
				if err != nil {
					t.Error(err)
					return
				}
				if rows.Len() != 10 {
					t.Errorf("got %d rows, want 10", rows.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRangeIndexSurvivesMutation(t *testing.T) {
	db := rangeDB(t)
	mustExec(t, db, "DELETE FROM runs WHERE ts >= 100 AND ts < 200")
	mustExec(t, db, "UPDATE runs SET ts = 150 WHERE ts = 50")
	got := queryIDs(t, db, "SELECT id FROM runs WHERE ts >= 100 AND ts < 200")
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("after mutation got rows %v, want [5]", got)
	}
}
