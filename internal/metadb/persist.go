package metadb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Snapshot format:
//
//	magic "MDB1" | u32 tableCount
//	per table: name | u32 colCount | cols (name, u8 kind)
//	           u32 indexCount | indexes (name, column)
//	           u32 rowCount | rows (values)
//	value: u8 kind | payload (varies)
//
// Strings are u32 length + bytes. Integers are little-endian.
//
// Rows serialize in global insertion order and indexes by sorted key,
// so the bytes are independent of the in-memory shard count: a DB
// sharded 8 ways saves the identical snapshot a 1-shard DB would.

var snapshotMagic = []byte("MDB1")

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("metadb: corrupt snapshot (string length %d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w io.Writer, v Value) error {
	if _, err := w.Write([]byte{byte(v.kind)}); err != nil {
		return err
	}
	switch v.kind {
	case KindNull:
		return nil
	case KindInt:
		return binary.Write(w, binary.LittleEndian, v.i)
	case KindReal:
		return binary.Write(w, binary.LittleEndian, math.Float64bits(v.r))
	case KindText:
		return writeString(w, v.s)
	case KindBlob:
		if err := binary.Write(w, binary.LittleEndian, uint32(len(v.b))); err != nil {
			return err
		}
		_, err := w.Write(v.b)
		return err
	}
	return fmt.Errorf("metadb: cannot serialize kind %d", v.kind)
}

func readValue(r io.Reader) (Value, error) {
	var kb [1]byte
	if _, err := io.ReadFull(r, kb[:]); err != nil {
		return Value{}, err
	}
	switch Kind(kb[0]) {
	case KindNull:
		return Null(), nil
	case KindInt:
		var i int64
		if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
			return Value{}, err
		}
		return Int(i), nil
	case KindReal:
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return Value{}, err
		}
		return Real(math.Float64frombits(bits)), nil
	case KindText:
		s, err := readString(r)
		if err != nil {
			return Value{}, err
		}
		return Text(s), nil
	case KindBlob:
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return Value{}, err
		}
		if n > 1<<30 {
			return Value{}, fmt.Errorf("metadb: corrupt snapshot (blob length %d)", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		return Blob(buf), nil
	}
	return Value{}, fmt.Errorf("metadb: corrupt snapshot (value kind %d)", kb[0])
}

// Save writes a full snapshot of the database. It serializes from an
// MVCC snapshot, so it takes no locks and concurrent queries and
// writers proceed unstalled; the bytes reflect one consistent version.
func (db *DB) Save(w io.Writer) error {
	st := db.read()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(st.tables))
	for n := range st.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := st.tables[name]
		if err := writeString(bw, t.name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.cols))); err != nil {
			return err
		}
		for _, c := range t.cols {
			if err := writeString(bw, c.name); err != nil {
				return err
			}
			if _, err := bw.Write([]byte{byte(c.kind)}); err != nil {
				return err
			}
		}
		// Index definitions serialize as (name, joined column list); a
		// composite index's columns join with commas, which identifiers
		// cannot contain, so old single-column snapshots load unchanged.
		defs := t.indexDefs()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(defs))); err != nil {
			return err
		}
		for _, d := range defs {
			if err := writeString(bw, d.name); err != nil {
				return err
			}
			if err := writeString(bw, indexKey(d.cols)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.rowCount())); err != nil {
			return err
		}
		for _, id := range t.globalOrder() {
			row, _ := t.rowOf(id)
			for _, v := range row {
				if err := writeValue(bw, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Load replaces the database contents with a snapshot previously
// written by Save. The new state is rebuilt sharded, published
// atomically, and the writer-lock registry is reset with seq
// allocators continuing past the loaded rows.
func (db *DB) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("metadb: reading snapshot header: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return fmt.Errorf("metadb: not a metadb snapshot (magic %q)", magic)
	}
	var tableCount uint32
	if err := binary.Read(br, binary.LittleEndian, &tableCount); err != nil {
		return err
	}
	tables := make(map[string]*tableData, tableCount)
	for ti := uint32(0); ti < tableCount; ti++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		colIdx := make(map[string]int)
		var cols []columnDef
		var colCount uint32
		if err := binary.Read(br, binary.LittleEndian, &colCount); err != nil {
			return err
		}
		for ci := uint32(0); ci < colCount; ci++ {
			cname, err := readString(br)
			if err != nil {
				return err
			}
			var kb [1]byte
			if _, err := io.ReadFull(br, kb[:]); err != nil {
				return err
			}
			colIdx[cname] = len(cols)
			cols = append(cols, columnDef{cname, Kind(kb[0])})
		}
		var idxCount uint32
		if err := binary.Read(br, binary.LittleEndian, &idxCount); err != nil {
			return err
		}
		defs := make([]indexDef, idxCount)
		for ii := range defs {
			iname, err := readString(br)
			if err != nil {
				return err
			}
			icol, err := readString(br)
			if err != nil {
				return err
			}
			icols := strings.Split(icol, ",")
			colPos := make([]int, len(icols))
			for i, c := range icols {
				pos, ok := colIdx[c]
				if !ok {
					return fmt.Errorf("metadb: snapshot index on unknown column %q", c)
				}
				colPos[i] = pos
			}
			defs[ii] = indexDef{iname, icols, colPos}
		}
		var rowCount uint32
		if err := binary.Read(br, binary.LittleEndian, &rowCount); err != nil {
			return err
		}
		seqs := make([]int64, rowCount)
		rows := make([][]Value, rowCount)
		for ri := uint32(0); ri < rowCount; ri++ {
			row := make([]Value, len(cols))
			for ci := range row {
				v, err := readValue(br)
				if err != nil {
					return err
				}
				row[ci] = v
			}
			seqs[ri] = int64(ri)
			rows[ri] = row
		}
		tables[name] = buildTable(name, cols, colIdx, db.nshards, defs, seqs, rows)
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	locks := make(map[string]*tableLocks, len(tables))
	for name, t := range tables {
		lk := db.newTableLocks()
		lk.nextSeq.Store(int64(t.rowCount()))
		locks[name] = lk
	}
	db.locksMu.Lock()
	db.locks = locks
	db.locksMu.Unlock()
	db.commitMu.Lock()
	cur := db.state.Load()
	db.state.Store(&dbState{version: cur.version + 1, tables: tables})
	db.commitMu.Unlock()
	db.commits.Add(1)
	return nil
}
