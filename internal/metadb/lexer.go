package metadb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam  // ?
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords of the dialect.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true, "DROP": true,
	"IF": true, "NOT": true, "EXISTS": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"UPDATE": true, "SET": true, "DELETE": true, "EXPLAIN": true,
	"AND": true, "OR": true, "IS": true, "NULL": true,
	"INTEGER": true, "INT": true, "REAL": true, "DOUBLE": true,
	"TEXT": true, "VARCHAR": true, "BLOB": true,
	// Aggregate function names (COUNT/MAX/MIN) are deliberately NOT
	// keywords: they are recognized contextually when followed by "(",
	// so they remain usable as column names (the paper's run_table has
	// a column literally called "min").
}

// lex splits a statement into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '?':
			toks = append(toks, token{tokParam, "?", i})
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("metadb: unterminated string at position %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < n && (isDigit(src[j]) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			// Multi-char operators first.
			if i+1 < n {
				two := src[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
					toks = append(toks, token{tokSymbol, two, i})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', ';', '.':
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("metadb: unexpected character %q at position %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
