package metadb

import (
	"bytes"
	"fmt"
	"testing"
)

// execTable loads a miniature execution_table shape: nRuns runs x
// nDatasets datasets x nSteps timesteps, with a composite index over
// all three key columns and the old single-column dataset index
// alongside.
func execTable(t *testing.T, nRuns, nDatasets, nSteps int) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE exec (runid INTEGER, dataset TEXT, timestep INTEGER, off INTEGER)`)
	mustExec(t, db, `CREATE INDEX exec_ds ON exec (dataset)`)
	mustExec(t, db, `CREATE INDEX exec_run_ds_ts ON exec (runid, dataset, timestep)`)
	for r := 1; r <= nRuns; r++ {
		for d := 0; d < nDatasets; d++ {
			for s := 0; s < nSteps; s++ {
				mustExec(t, db, `INSERT INTO exec VALUES (?, ?, ?, ?)`,
					r, fmt.Sprintf("ds%d", d), s, r*1000+d*100+s)
			}
		}
	}
	return db
}

// TestCompositeIndexFullEqualityProbe asserts that a probe binding all
// three columns is served by the composite index: one index hit, and
// exactly the matching row scanned (the single-column dataset index
// would have scanned the dataset's entire history).
func TestCompositeIndexFullEqualityProbe(t *testing.T) {
	db := execTable(t, 3, 4, 10)
	hits0, scanned0 := db.IndexHits(), db.RowsScanned()
	row, err := db.QueryRow(`SELECT off FROM exec WHERE runid = ? AND dataset = ? AND timestep = ?`,
		2, "ds3", 7)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row[0].AsInt() != 2*1000+3*100+7 {
		t.Fatalf("probe returned %v", row)
	}
	if got := db.IndexHits() - hits0; got != 1 {
		t.Fatalf("IndexHits delta = %d, want 1", got)
	}
	if got := db.RowsScanned() - scanned0; got != 1 {
		t.Fatalf("RowsScanned delta = %d, want 1 (composite bucket is exact)", got)
	}
}

// TestCompositePreferredOverSingleColumn loads the same probe against a
// table with only the dataset index: the candidate set is the whole
// dataset history, proving the composite index is what narrows the
// scan.
func TestCompositePreferredOverSingleColumn(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE exec (runid INTEGER, dataset TEXT, timestep INTEGER, off INTEGER)`)
	mustExec(t, db, `CREATE INDEX exec_ds ON exec (dataset)`)
	const nSteps = 25
	for s := 0; s < nSteps; s++ {
		mustExec(t, db, `INSERT INTO exec VALUES (1, 'p', ?, ?)`, s, s)
	}
	scanned0 := db.RowsScanned()
	if _, err := db.QueryRow(`SELECT off FROM exec WHERE runid = 1 AND dataset = 'p' AND timestep = 13`); err != nil {
		t.Fatal(err)
	}
	if got := db.RowsScanned() - scanned0; got != nSteps {
		t.Fatalf("single-column probe scanned %d rows, want %d", got, nSteps)
	}

	mustExec(t, db, `CREATE INDEX exec_cmp ON exec (runid, dataset, timestep)`)
	scanned1 := db.RowsScanned()
	if _, err := db.QueryRow(`SELECT off FROM exec WHERE runid = 1 AND dataset = 'p' AND timestep = 13`); err != nil {
		t.Fatal(err)
	}
	if got := db.RowsScanned() - scanned1; got != 1 {
		t.Fatalf("composite probe scanned %d rows, want 1", got)
	}
}

// TestCompositePartialBindingFallsBack verifies a probe binding only a
// prefix (or a subset) of the composite columns cannot use the hash
// index: it falls back to a covered single-column index or a scan, and
// still answers correctly.
func TestCompositePartialBindingFallsBack(t *testing.T) {
	db := execTable(t, 2, 3, 5)
	rows, err := db.Query(`SELECT off FROM exec WHERE runid = 1 AND dataset = 'ds1'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 5 {
		t.Fatalf("partial probe returned %d rows, want 5", rows.Len())
	}
	// Only timestep bound: no covering index at all -> full scan, right
	// answer regardless.
	scanned0 := db.RowsScanned()
	rows, err = db.Query(`SELECT off FROM exec WHERE timestep = 4`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2*3 {
		t.Fatalf("timestep probe returned %d rows, want 6", rows.Len())
	}
	if got := db.RowsScanned() - scanned0; got != 2*3*5 {
		t.Fatalf("unindexed probe scanned %d rows, want full table %d", got, 2*3*5)
	}
}

// TestCompositeIndexMutationMaintenance drives UPDATE and DELETE
// through composite-indexed rows and re-probes.
func TestCompositeIndexMutationMaintenance(t *testing.T) {
	db := execTable(t, 2, 2, 4)
	mustExec(t, db, `UPDATE exec SET timestep = 99 WHERE runid = 2 AND dataset = 'ds1' AND timestep = 3`)
	row, err := db.QueryRow(`SELECT off FROM exec WHERE runid = 2 AND dataset = 'ds1' AND timestep = 99`)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row[0].AsInt() != 2*1000+1*100+3 {
		t.Fatalf("re-probe after UPDATE returned %v", row)
	}
	if row, _ := db.QueryRow(`SELECT off FROM exec WHERE runid = 2 AND dataset = 'ds1' AND timestep = 3`); row != nil {
		t.Fatalf("stale composite entry survived UPDATE: %v", row)
	}

	mustExec(t, db, `DELETE FROM exec WHERE runid = 1 AND dataset = 'ds0' AND timestep = 0`)
	if row, _ := db.QueryRow(`SELECT off FROM exec WHERE runid = 1 AND dataset = 'ds0' AND timestep = 0`); row != nil {
		t.Fatalf("deleted row still probe-able: %v", row)
	}
	row, err = db.QueryRow(`SELECT COUNT(*) FROM exec`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].AsInt() != 2*2*4-1 {
		t.Fatalf("row count after delete = %d", row[0].AsInt())
	}
}

// TestCompositeKeyNoBoundaryCollisions guards the tuple hash key
// against column-boundary ambiguity: ("ab", "c") must not collide with
// ("a", "bc").
func TestCompositeKeyNoBoundaryCollisions(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE kv (a TEXT, b TEXT, v INTEGER)`)
	mustExec(t, db, `CREATE INDEX kv_ab ON kv (a, b)`)
	mustExec(t, db, `INSERT INTO kv VALUES ('ab', 'c', 1), ('a', 'bc', 2)`)
	row, err := db.QueryRow(`SELECT v FROM kv WHERE a = 'ab' AND b = 'c'`)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row[0].AsInt() != 1 {
		t.Fatalf("probe ('ab','c') = %v", row)
	}
	row, err = db.QueryRow(`SELECT v FROM kv WHERE a = 'a' AND b = 'bc'`)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row[0].AsInt() != 2 {
		t.Fatalf("probe ('a','bc') = %v", row)
	}
}

// TestCompositeIndexPersistRoundTrip snapshots a database holding a
// composite index and reloads it, verifying the index definition and
// its probe behavior survive.
func TestCompositeIndexPersistRoundTrip(t *testing.T) {
	db := execTable(t, 2, 3, 4)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	hits0, scanned0 := db2.IndexHits(), db2.RowsScanned()
	row, err := db2.QueryRow(`SELECT off FROM exec WHERE runid = 2 AND dataset = 'ds2' AND timestep = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row[0].AsInt() != 2*1000+2*100+1 {
		t.Fatalf("reloaded probe returned %v", row)
	}
	if db2.IndexHits()-hits0 != 1 || db2.RowsScanned()-scanned0 != 1 {
		t.Fatalf("reloaded composite index not used: hits %d scanned %d",
			db2.IndexHits()-hits0, db2.RowsScanned()-scanned0)
	}
}
