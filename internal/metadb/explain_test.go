package metadb

import (
	"strings"
	"testing"
)

func explainDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE runs (runid INTEGER, dataset TEXT, timestep INTEGER)`)
	mustExec(t, db, `CREATE INDEX runs_runid ON runs(runid)`)
	mustExec(t, db, `CREATE INDEX runs_probe ON runs(runid, dataset)`)
	for i := 0; i < 10; i++ {
		mustExec(t, db, `INSERT INTO runs VALUES (?, ?, ?)`, i%3, "d", i)
	}
	return db
}

// planText runs EXPLAIN and returns the plan lines joined.
func planText(t *testing.T, db *DB, sql string, args ...any) string {
	t.Helper()
	rows, err := db.Query("EXPLAIN "+sql, args...)
	if err != nil {
		t.Fatalf("EXPLAIN %q: %v", sql, err)
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN columns = %v", rows.Columns)
	}
	var lines []string
	for _, row := range rows.Data {
		lines = append(lines, row[0].AsText())
	}
	return strings.Join(lines, "\n")
}

func TestExplainPlanKinds(t *testing.T) {
	db := explainDB(t)

	eq := planText(t, db, `SELECT * FROM runs WHERE runid = 1 AND dataset = 'd'`)
	if !strings.Contains(eq, "equality probe on index runs_probe") {
		t.Fatalf("composite equality plan:\n%s", eq)
	}
	if !strings.Contains(eq, "cover all 2 index column(s)") {
		t.Fatalf("equality plan missing reason:\n%s", eq)
	}

	rng := planText(t, db, `SELECT * FROM runs WHERE runid > 0`)
	if !strings.Contains(rng, "range scan on index runs_runid") {
		t.Fatalf("range plan:\n%s", rng)
	}

	scan := planText(t, db, `SELECT * FROM runs`)
	if !strings.Contains(scan, "full table scan: no WHERE clause") {
		t.Fatalf("scan plan:\n%s", scan)
	}

	unindexed := planText(t, db, `SELECT * FROM runs WHERE timestep = 4`)
	if !strings.Contains(unindexed, "full table scan:") {
		t.Fatalf("unindexed plan:\n%s", unindexed)
	}
}

// The estimate line reports how many candidate rows the chosen plan
// yields against the current data, out of the table's total.
func TestExplainEstimate(t *testing.T) {
	db := explainDB(t)
	// runid = 1 matches rows 1, 4, 7 of the 10 inserted.
	got := planText(t, db, `SELECT * FROM runs WHERE runid = 1`)
	if !strings.Contains(got, "estimate: scan 3 of 10 row(s)") {
		t.Fatalf("estimate:\n%s", got)
	}
	full := planText(t, db, `SELECT * FROM runs`)
	if !strings.Contains(full, "estimate: scan 10 of 10 row(s)") {
		t.Fatalf("full-scan estimate:\n%s", full)
	}
}

// EXPLAIN shares planFor with execution, so the printed plan kind must
// match what running the same statement counts in PlanCounts.
func TestExplainMatchesExecutedPlan(t *testing.T) {
	db := explainDB(t)
	cases := []struct {
		sql  string
		kind string
	}{
		{`SELECT * FROM runs WHERE runid = 1 AND dataset = 'd'`, "equality probe"},
		{`SELECT * FROM runs WHERE runid >= 1`, "range scan"},
		{`SELECT * FROM runs WHERE timestep = 2`, "full table scan"},
	}
	for _, tc := range cases {
		plan := planText(t, db, tc.sql)
		if !strings.Contains(plan, tc.kind) {
			t.Fatalf("EXPLAIN %q = %q, want kind %q", tc.sql, plan, tc.kind)
		}
		eq0, rng0, scan0 := db.PlanCounts()
		mustQuery(t, db, tc.sql)
		eq1, rng1, scan1 := db.PlanCounts()
		var bumped string
		switch {
		case eq1 == eq0+1 && rng1 == rng0 && scan1 == scan0:
			bumped = "equality probe"
		case rng1 == rng0+1 && eq1 == eq0 && scan1 == scan0:
			bumped = "range scan"
		case scan1 == scan0+1 && eq1 == eq0 && rng1 == rng0:
			bumped = "full table scan"
		default:
			t.Fatalf("%q: plan counts moved unexpectedly (%d,%d,%d)->(%d,%d,%d)",
				tc.sql, eq0, rng0, scan0, eq1, rng1, scan1)
		}
		if bumped != tc.kind {
			t.Fatalf("%q: EXPLAIN says %q, execution counted %q", tc.sql, tc.kind, bumped)
		}
	}
}

func TestExplainOrderByIndexLine(t *testing.T) {
	db := explainDB(t)
	got := planText(t, db, `SELECT * FROM runs WHERE runid > 0 ORDER BY runid`)
	if !strings.Contains(got, "order by runid served from index runs_runid (no sort)") {
		t.Fatalf("order-by line missing:\n%s", got)
	}
	// ORDER BY on an unindexed column gets no such line.
	got = planText(t, db, `SELECT * FROM runs ORDER BY timestep`)
	if strings.Contains(got, "served from index") {
		t.Fatalf("unexpected order-by line:\n%s", got)
	}
}

// EXPLAIN with placeholder params plans against the bound values.
func TestExplainWithParams(t *testing.T) {
	db := explainDB(t)
	rows, err := db.Explain(`SELECT * FROM runs WHERE runid = ?`, 2)
	if err != nil {
		t.Fatal(err)
	}
	text := rows.Data[0][0].AsText()
	if !strings.Contains(text, "equality probe on index runs_runid") {
		t.Fatalf("param plan: %q", text)
	}
}

// EXPLAIN observes without executing: no query-count bump, no plan
// counter movement, and no rows touched.
func TestExplainDoesNotExecute(t *testing.T) {
	db := explainDB(t)
	q0 := db.QueryCount()
	eq0, rng0, scan0 := db.PlanCounts()
	planText(t, db, `SELECT * FROM runs WHERE runid = 1`)
	if got := db.QueryCount(); got != q0 {
		t.Fatalf("EXPLAIN bumped QueryCount: %d -> %d", q0, got)
	}
	eq1, rng1, scan1 := db.PlanCounts()
	if eq1 != eq0 || rng1 != rng0 || scan1 != scan0 {
		t.Fatalf("EXPLAIN moved plan counts: (%d,%d,%d) -> (%d,%d,%d)",
			eq0, rng0, scan0, eq1, rng1, scan1)
	}
}

func TestExplainErrors(t *testing.T) {
	db := explainDB(t)
	if _, err := db.Query(`EXPLAIN SELECT * FROM nosuch`); err == nil {
		t.Fatal("EXPLAIN over a missing table succeeded")
	}
	if _, err := db.Query(`EXPLAIN DELETE FROM runs`); err == nil {
		t.Fatal("EXPLAIN of a non-SELECT succeeded")
	}
}
