// Package metadb is an embedded relational database with a small SQL
// dialect, standing in for the MySQL instance the paper stores SDM's
// metadata in. It supports CREATE TABLE / CREATE INDEX / INSERT /
// SELECT / UPDATE / DELETE with WHERE filters, ORDER BY, LIMIT and `?`
// parameter placeholders, hash indexes used automatically for equality
// lookups, and binary snapshot persistence.
//
// The subset is exactly what SDM's six metadata tables need (run_table,
// access_pattern_table, execution_table, import_table, index_table,
// index_history_table — see internal/catalog), but the engine is
// general: any schema of INTEGER / REAL / TEXT / BLOB columns works.
package metadb

import (
	"fmt"
	"strconv"
)

// Kind enumerates column/value types.
type Kind int

// Value kinds. KindNull is the type of the SQL NULL literal.
const (
	KindNull Kind = iota
	KindInt
	KindReal
	KindText
	KindBlob
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindReal:
		return "REAL"
	case KindText:
		return "TEXT"
	case KindBlob:
		return "BLOB"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is one cell. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	r    float64
	s    string
	b    []byte
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Real wraps a float64.
func Real(v float64) Value { return Value{kind: KindReal, r: v} }

// Text wraps a string.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Blob wraps a byte slice (not copied).
func Blob(v []byte) Value { return Value{kind: KindBlob, b: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer contents (real values truncate).
func (v Value) AsInt() int64 {
	if v.kind == KindReal {
		return int64(v.r)
	}
	return v.i
}

// AsReal returns the floating contents (integers widen).
func (v Value) AsReal() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.r
}

// AsText returns the string contents.
func (v Value) AsText() string { return v.s }

// AsBlob returns the raw bytes.
func (v Value) AsBlob() []byte { return v.b }

func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBlob:
		return fmt.Sprintf("x'%x'", v.b)
	}
	return "?"
}

// numeric reports whether v participates in arithmetic.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindReal }

// compare orders two values. NULL sorts before everything; numbers
// compare numerically across int/real; text and blobs compare
// lexicographically. Cross-type comparisons order by kind, mirroring
// SQLite's type ordering, so sorting is always total.
func compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		av, bv := a.AsReal(), b.AsReal()
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindText:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case KindBlob:
		return compareBytes(a.b, b.b)
	}
	return 0
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// equal is equality under compare semantics.
func equal(a, b Value) bool { return compare(a, b) == 0 }

// hashKey produces a map key for index lookups. Numeric values hash by
// their real representation so Int(3) and Real(3.0) collide, matching
// compare.
func (v Value) hashKey() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt, KindReal:
		return "f" + strconv.FormatFloat(v.AsReal(), 'b', -1, 64)
	case KindText:
		return "t" + v.s
	case KindBlob:
		return "b" + string(v.b)
	}
	return "?"
}

// coerce converts v for storage into a column of kind k.
func coerce(v Value, k Kind) (Value, error) {
	if v.kind == KindNull || v.kind == k {
		return v, nil
	}
	switch {
	case k == KindReal && v.kind == KindInt:
		return Real(float64(v.i)), nil
	case k == KindInt && v.kind == KindReal:
		if v.r == float64(int64(v.r)) {
			return Int(int64(v.r)), nil
		}
	case k == KindBlob && v.kind == KindText:
		return Blob([]byte(v.s)), nil
	}
	return Value{}, fmt.Errorf("metadb: cannot store %s value into %s column", v.kind, k)
}

// GoValue converts common Go types into Values, for the Exec/Query
// parameter interface.
func GoValue(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null(), nil
	case Value:
		return x, nil
	case int:
		return Int(int64(x)), nil
	case int32:
		return Int(int64(x)), nil
	case int64:
		return Int(x), nil
	case uint32:
		return Int(int64(x)), nil
	case float64:
		return Real(x), nil
	case string:
		return Text(x), nil
	case []byte:
		return Blob(x), nil
	case bool:
		if x {
			return Int(1), nil
		}
		return Int(0), nil
	}
	return Value{}, fmt.Errorf("metadb: unsupported parameter type %T", v)
}
