package metadb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, db *DB, sql string, args ...any) int {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...any) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func sampleDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE runs (runid INTEGER, dataset TEXT, size REAL, payload BLOB)`)
	mustExec(t, db, `INSERT INTO runs VALUES (1, 'p', 21.5, NULL)`)
	mustExec(t, db, `INSERT INTO runs VALUES (2, 'q', 105.0, NULL)`)
	mustExec(t, db, `INSERT INTO runs (runid, dataset, size) VALUES (3, 'p', 36.25)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT runid, dataset FROM runs`)
	if rows.Len() != 3 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if rows.Columns[0] != "runid" || rows.Columns[1] != "dataset" {
		t.Fatalf("columns = %v", rows.Columns)
	}
	if rows.Data[0][0].AsInt() != 1 || rows.Data[0][1].AsText() != "p" {
		t.Fatalf("first row = %v", rows.Data[0])
	}
}

func TestSelectStar(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT * FROM runs`)
	if len(rows.Columns) != 4 {
		t.Fatalf("columns = %v", rows.Columns)
	}
	if !rows.Data[0][3].IsNull() {
		t.Fatal("payload should be NULL")
	}
}

func TestWhereFilters(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT runid FROM runs WHERE dataset = 'p' AND size > 30`)
	if rows.Len() != 1 || rows.Data[0][0].AsInt() != 3 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT runid FROM runs WHERE dataset = 'p' OR runid = 2`)
	if rows.Len() != 3 {
		t.Fatalf("OR returned %d rows", rows.Len())
	}
	rows = mustQuery(t, db, `SELECT runid FROM runs WHERE NOT (dataset = 'p')`)
	if rows.Len() != 1 || rows.Data[0][0].AsInt() != 2 {
		t.Fatalf("NOT returned %+v", rows.Data)
	}
}

func TestParameters(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT size FROM runs WHERE dataset = ? AND runid = ?`, "p", 3)
	if rows.Len() != 1 || rows.Data[0][0].AsReal() != 36.25 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	if _, err := db.Query(`SELECT * FROM runs WHERE runid = ?`); err == nil {
		t.Fatal("missing parameter not rejected")
	}
	if _, err := db.Query(`SELECT * FROM runs WHERE runid = ?`, 1, 2); err == nil {
		t.Fatal("extra parameter not rejected")
	}
}

func TestStringEscapes(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('it''s')`)
	rows := mustQuery(t, db, `SELECT s FROM t`)
	if rows.Data[0][0].AsText() != "it's" {
		t.Fatalf("got %q", rows.Data[0][0].AsText())
	}
}

func TestOrderBy(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT runid FROM runs ORDER BY size DESC`)
	got := [3]int64{rows.Data[0][0].AsInt(), rows.Data[1][0].AsInt(), rows.Data[2][0].AsInt()}
	if got != [3]int64{2, 3, 1} {
		t.Fatalf("order = %v", got)
	}
	// Multi-key: dataset ASC then runid DESC.
	rows = mustQuery(t, db, `SELECT runid FROM runs ORDER BY dataset ASC, runid DESC`)
	got = [3]int64{rows.Data[0][0].AsInt(), rows.Data[1][0].AsInt(), rows.Data[2][0].AsInt()}
	if got != [3]int64{3, 1, 2} {
		t.Fatalf("multi-key order = %v", got)
	}
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT dataset FROM runs ORDER BY size DESC`)
	if rows.Data[0][0].AsText() != "q" {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestLimit(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT runid FROM runs ORDER BY runid LIMIT 2`)
	if rows.Len() != 2 || rows.Data[1][0].AsInt() != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT runid FROM runs LIMIT 0`)
	if rows.Len() != 0 {
		t.Fatal("LIMIT 0 returned rows")
	}
}

func TestUpdate(t *testing.T) {
	db := sampleDB(t)
	n := mustExec(t, db, `UPDATE runs SET size = size + 1 WHERE dataset = 'p'`)
	if n != 2 {
		t.Fatalf("updated %d rows", n)
	}
	rows := mustQuery(t, db, `SELECT size FROM runs WHERE runid = 1`)
	if rows.Data[0][0].AsReal() != 22.5 {
		t.Fatalf("size = %v", rows.Data[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := sampleDB(t)
	n := mustExec(t, db, `DELETE FROM runs WHERE runid = 2`)
	if n != 1 {
		t.Fatalf("deleted %d", n)
	}
	rows := mustQuery(t, db, `SELECT * FROM runs`)
	if rows.Len() != 2 {
		t.Fatalf("remaining = %d", rows.Len())
	}
	// Delete everything.
	mustExec(t, db, `DELETE FROM runs`)
	if mustQuery(t, db, `SELECT * FROM runs`).Len() != 0 {
		t.Fatal("table not emptied")
	}
}

func TestAggregates(t *testing.T) {
	db := sampleDB(t)
	rows := mustQuery(t, db, `SELECT COUNT(*), MAX(runid), MIN(size) FROM runs`)
	r := rows.Data[0]
	if r[0].AsInt() != 3 || r[1].AsInt() != 3 || r[2].AsReal() != 21.5 {
		t.Fatalf("aggregates = %v", r)
	}
	rows = mustQuery(t, db, `SELECT COUNT(payload) FROM runs`)
	if rows.Data[0][0].AsInt() != 0 {
		t.Fatalf("COUNT(col) over NULLs = %v", rows.Data[0][0])
	}
	rows = mustQuery(t, db, `SELECT MAX(runid) FROM runs WHERE dataset = 'zzz'`)
	if !rows.Data[0][0].IsNull() {
		t.Fatal("MAX over empty set should be NULL")
	}
	if _, err := db.Query(`SELECT runid, COUNT(*) FROM runs`); err == nil {
		t.Fatal("mixed aggregate/plain not rejected")
	}
}

func TestNullSemantics(t *testing.T) {
	db := sampleDB(t)
	// Comparisons with NULL never match.
	rows := mustQuery(t, db, `SELECT runid FROM runs WHERE payload = NULL`)
	if rows.Len() != 0 {
		t.Fatal("= NULL matched rows")
	}
	rows = mustQuery(t, db, `SELECT runid FROM runs WHERE payload IS NULL`)
	if rows.Len() != 3 {
		t.Fatalf("IS NULL found %d rows", rows.Len())
	}
	rows = mustQuery(t, db, `SELECT runid FROM runs WHERE payload IS NOT NULL`)
	if rows.Len() != 0 {
		t.Fatal("IS NOT NULL matched rows")
	}
}

func TestArithmetic(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INTEGER, b REAL)`)
	mustExec(t, db, `INSERT INTO t VALUES (7, 2.5)`)
	rows := mustQuery(t, db, `SELECT a + 1, a * 2, a - 10, b * a, a / 2 FROM t`)
	r := rows.Data[0]
	if r[0].AsInt() != 8 || r[1].AsInt() != 14 || r[2].AsInt() != -3 {
		t.Fatalf("int arithmetic = %v", r)
	}
	if r[3].AsReal() != 17.5 {
		t.Fatalf("mixed mult = %v", r[3])
	}
	if r[4].AsInt() != 3 { // integer division
		t.Fatalf("int div = %v", r[4])
	}
	rows = mustQuery(t, db, `SELECT a / 0 FROM t`)
	if !rows.Data[0][0].IsNull() {
		t.Fatal("division by zero should be NULL")
	}
}

func TestUnaryMinusAndParens(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (-5)`)
	rows := mustQuery(t, db, `SELECT a FROM t WHERE a = -(2 + 3)`)
	if rows.Len() != 1 {
		t.Fatal("unary minus / parens broken")
	}
}

func TestTypeCoercion(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (i INTEGER, r REAL, b BLOB)`)
	// Int into real column widens; whole real into int narrows.
	mustExec(t, db, `INSERT INTO t VALUES (3.0, 4, 'text-as-blob')`)
	rows := mustQuery(t, db, `SELECT i, r, b FROM t`)
	r := rows.Data[0]
	if r[0].Kind() != KindInt || r[0].AsInt() != 3 {
		t.Fatalf("i = %v (%v)", r[0], r[0].Kind())
	}
	if r[1].Kind() != KindReal || r[1].AsReal() != 4.0 {
		t.Fatalf("r = %v", r[1])
	}
	if r[2].Kind() != KindBlob || string(r[2].AsBlob()) != "text-as-blob" {
		t.Fatalf("b = %v", r[2])
	}
	// Fractional real into int column fails.
	if _, err := db.Exec(`INSERT INTO t (i) VALUES (3.5)`); err == nil {
		t.Fatal("lossy coercion not rejected")
	}
	// Int into text column fails.
	if _, err := db.Exec(`CREATE TABLE t2 (s TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t2 VALUES (5)`); err == nil {
		t.Fatal("int->text coercion not rejected")
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	n := mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3)`)
	if n != 3 {
		t.Fatalf("inserted %d", n)
	}
}

func TestIndexCorrectness(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (k INTEGER, v TEXT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, i%10, fmt.Sprintf("row%d", i))
	}
	noIdx := mustQuery(t, db, `SELECT v FROM t WHERE k = 7 ORDER BY v`)
	mustExec(t, db, `CREATE INDEX t_k ON t (k)`)
	withIdx := mustQuery(t, db, `SELECT v FROM t WHERE k = 7 ORDER BY v`)
	if noIdx.Len() != 10 || withIdx.Len() != 10 {
		t.Fatalf("lens %d, %d", noIdx.Len(), withIdx.Len())
	}
	for i := range noIdx.Data {
		if noIdx.Data[i][0].AsText() != withIdx.Data[i][0].AsText() {
			t.Fatal("index changed results")
		}
	}
	// Index must track updates and deletes.
	mustExec(t, db, `UPDATE t SET k = 99 WHERE v = 'row7'`)
	rows := mustQuery(t, db, `SELECT v FROM t WHERE k = 99`)
	if rows.Len() != 1 || rows.Data[0][0].AsText() != "row7" {
		t.Fatalf("after update: %+v", rows.Data)
	}
	mustExec(t, db, `DELETE FROM t WHERE k = 99`)
	if mustQuery(t, db, `SELECT v FROM t WHERE k = 99`).Len() != 0 {
		t.Fatal("index returned deleted row")
	}
	if mustQuery(t, db, `SELECT * FROM t WHERE k = 7`).Len() != 9 {
		t.Fatal("unrelated rows disturbed")
	}
}

func TestIndexPreservesInsertionOrder(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (k INTEGER, seq INTEGER)`)
	mustExec(t, db, `CREATE INDEX t_k ON t (k)`)
	for i := 0; i < 20; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (1, ?)`, i)
	}
	rows := mustQuery(t, db, `SELECT seq FROM t WHERE k = 1`)
	for i := 0; i < 20; i++ {
		if rows.Data[i][0].AsInt() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, rows.Data[i][0])
		}
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	if _, err := db.Exec(`CREATE TABLE t (a INTEGER)`); err == nil {
		t.Fatal("duplicate table not rejected")
	}
	mustExec(t, db, `CREATE TABLE IF NOT EXISTS t (a INTEGER)`)
	mustExec(t, db, `CREATE INDEX i ON t (a)`)
	if _, err := db.Exec(`CREATE INDEX i2 ON t (a)`); err == nil {
		t.Fatal("duplicate index not rejected")
	}
	mustExec(t, db, `CREATE INDEX IF NOT EXISTS i3 ON t (a)`)
}

func TestDropTable(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `DROP TABLE t`)
	if _, err := db.Query(`SELECT * FROM t`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := db.Exec(`DROP TABLE t`); err == nil {
		t.Fatal("double drop not rejected")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS t`)
}

func TestErrorCases(t *testing.T) {
	db := New()
	cases := []string{
		`SELEC * FROM t`,
		`SELECT * FROM missing`,
		`INSERT INTO missing VALUES (1)`,
		`CREATE TABLE bad (a WEIRDTYPE)`,
		`SELECT FROM t`,
		`SELECT * FROM t WHERE`,
		`INSERT INTO t VALUES (1`,
		`SELECT * FROM t; SELECT * FROM t`,
		`UPDATE missing SET a = 1`,
		`DELETE FROM missing`,
	}
	for _, sql := range cases {
		_, errQ := db.Query(sql)
		_, errE := db.Exec(sql)
		if errQ == nil && errE == nil {
			t.Errorf("statement %q unexpectedly succeeded", sql)
		}
	}
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	if _, err := db.Exec(`INSERT INTO t (b) VALUES (1)`); err == nil {
		t.Error("unknown column in INSERT accepted")
	}
	if _, err := db.Query(`SELECT nope FROM t`); err == nil {
		t.Error("unknown column in SELECT accepted")
	}
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := db.Query(`DELETE FROM t`); err == nil {
		t.Error("Query of DELETE accepted")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := New()
	mustExec(t, db, `create table MyTable (MyCol integer)`)
	mustExec(t, db, `INSERT INTO mytable (mycol) VALUES (5)`)
	rows := mustQuery(t, db, `SELECT MYCOL FROM MYTABLE WHERE mycol = 5`)
	if rows.Len() != 1 {
		t.Fatal("case-insensitive identifiers broken")
	}
}

func TestQueryRow(t *testing.T) {
	db := sampleDB(t)
	row, err := db.QueryRow(`SELECT dataset FROM runs WHERE runid = ?`, 2)
	if err != nil || row == nil || row[0].AsText() != "q" {
		t.Fatalf("row=%v err=%v", row, err)
	}
	row, err = db.QueryRow(`SELECT dataset FROM runs WHERE runid = 999`)
	if err != nil || row != nil {
		t.Fatalf("missing row: %v, %v", row, err)
	}
}

func TestBlobValues(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (id INTEGER, data BLOB)`)
	payload := []byte{0, 1, 2, 255, 254}
	mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, 1, payload)
	rows := mustQuery(t, db, `SELECT data FROM t WHERE id = 1`)
	if !bytes.Equal(rows.Data[0][0].AsBlob(), payload) {
		t.Fatal("blob round trip failed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := sampleDB(t)
	mustExec(t, db, `CREATE INDEX runs_ds ON runs (dataset)`)
	mustExec(t, db, `CREATE TABLE other (x REAL, b BLOB)`)
	mustExec(t, db, `INSERT INTO other VALUES (1.5, ?)`, []byte{9, 8, 7})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db2, `SELECT runid FROM runs WHERE dataset = 'p' ORDER BY runid`)
	if rows.Len() != 2 || rows.Data[1][0].AsInt() != 3 {
		t.Fatalf("restored rows = %+v", rows.Data)
	}
	other := mustQuery(t, db2, `SELECT x, b FROM other`)
	if other.Data[0][0].AsReal() != 1.5 || !bytes.Equal(other.Data[0][1].AsBlob(), []byte{9, 8, 7}) {
		t.Fatalf("other = %+v", other.Data)
	}
	// Index still used and correct after reload (update/delete paths).
	mustExec(t, db2, `DELETE FROM runs WHERE dataset = 'p'`)
	if mustQuery(t, db2, `SELECT * FROM runs WHERE dataset = 'p'`).Len() != 0 {
		t.Fatal("index broken after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := New()
	if err := db.Load(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := db.Load(strings.NewReader("MD")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestQueryCount(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	before := db.QueryCount()
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustQuery(t, db, `SELECT * FROM t`)
	if db.QueryCount()-before != 2 {
		t.Fatalf("query count delta = %d", db.QueryCount()-before)
	}
}

// Property: INSERT then SELECT WHERE key returns exactly the inserted
// rows with that key, for random values, with and without an index.
func TestInsertSelectProperty(t *testing.T) {
	f := func(keys []uint8, useIndex bool) bool {
		if len(keys) > 64 {
			keys = keys[:64]
		}
		db := New()
		if _, err := db.Exec(`CREATE TABLE t (k INTEGER, pos INTEGER)`); err != nil {
			return false
		}
		if useIndex {
			if _, err := db.Exec(`CREATE INDEX tk ON t (k)`); err != nil {
				return false
			}
		}
		counts := map[int64]int{}
		for i, k := range keys {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, int64(k), i); err != nil {
				return false
			}
			counts[int64(k)]++
		}
		for k, want := range counts {
			rows, err := db.Query(`SELECT pos FROM t WHERE k = ?`, k)
			if err != nil || rows.Len() != want {
				return false
			}
		}
		rows, err := db.Query(`SELECT COUNT(*) FROM t`)
		if err != nil || rows.Data[0][0].AsInt() != int64(len(keys)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ORDER BY produces a non-decreasing sequence.
func TestOrderByProperty(t *testing.T) {
	f := func(vals []int16) bool {
		db := New()
		if _, err := db.Exec(`CREATE TABLE t (v INTEGER)`); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := db.Exec(`INSERT INTO t VALUES (?)`, int64(v)); err != nil {
				return false
			}
		}
		rows, err := db.Query(`SELECT v FROM t ORDER BY v`)
		if err != nil || rows.Len() != len(vals) {
			return false
		}
		for i := 1; i < rows.Len(); i++ {
			if rows.Data[i][0].AsInt() < rows.Data[i-1][0].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshots survive a save/load round trip for random text.
func TestPersistenceProperty(t *testing.T) {
	f := func(texts []string) bool {
		if len(texts) > 32 {
			texts = texts[:32]
		}
		db := New()
		if _, err := db.Exec(`CREATE TABLE t (i INTEGER, s TEXT)`); err != nil {
			return false
		}
		for i, s := range texts {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, i, s); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		db2 := New()
		if err := db2.Load(&buf); err != nil {
			return false
		}
		rows, err := db2.Query(`SELECT s FROM t ORDER BY i`)
		if err != nil || rows.Len() != len(texts) {
			return false
		}
		for i, s := range texts {
			if rows.Data[i][0].AsText() != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTableNamesAndColumns(t *testing.T) {
	db := sampleDB(t)
	mustExec(t, db, `CREATE TABLE another (z INTEGER)`)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "another" || names[1] != "runs" {
		t.Fatalf("names = %v", names)
	}
	cols, err := db.Columns("runs")
	if err != nil || len(cols) != 4 || cols[0] != "runid" {
		t.Fatalf("cols = %v, %v", cols, err)
	}
	if _, err := db.Columns("missing"); err == nil {
		t.Fatal("Columns on missing table succeeded")
	}
}
