package metadb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// execSchema creates the execution-table shape the catalog uses —
// single-column index plus the widest composite, which makes runid the
// shard-routing column — in a DB with the given shard count.
func execSchema(t *testing.T, n int) *DB {
	t.Helper()
	db := NewWithShards(n)
	for _, sql := range []string{
		`CREATE TABLE exec (runid INTEGER, dataset TEXT, timestep INTEGER, bytes INTEGER)`,
		`CREATE INDEX exec_dataset ON exec (dataset)`,
		`CREATE INDEX exec_run_ds_ts ON exec (runid, dataset, timestep)`,
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSnapshotReadersSeeNoTornBatch is the MVCC atomicity pin: one
// writer INSERTs multi-row batches (every row of a batch carries the
// batch's tag, rows spread across shards via distinct runids) and
// occasionally deletes whole batches, while readers COUNT rows by tag.
// A snapshot must show a batch entirely or not at all — any
// intermediate count means a reader caught a half-published batch.
func TestSnapshotReadersSeeNoTornBatch(t *testing.T) {
	db := execSchema(t, DefaultShards)
	const batchRows = 6
	const readers = 4

	var lastTag atomic.Int64
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sql := `INSERT INTO exec VALUES `
		for i := 0; i < batchRows; i++ {
			if i > 0 {
				sql += ", "
			}
			sql += `(?, ?, ?, ?)`
		}
		for tag := int64(1); ; tag++ {
			select {
			case <-stop:
				return
			default:
			}
			args := make([]any, 0, batchRows*4)
			for i := 0; i < batchRows; i++ {
				// Distinct runids per batch row → the batch spans shards,
				// so a torn publish would be observable per shard.
				args = append(args, tag*int64(batchRows)+int64(i), fmt.Sprintf("ds%d", i%3), tag, tag)
			}
			if _, err := db.Exec(sql, args...); err != nil {
				t.Errorf("insert batch: %v", err)
				return
			}
			lastTag.Store(tag)
			if tag%7 == 0 {
				// Drop an old batch whole; deletes must be atomic too.
				if _, err := db.Exec(`DELETE FROM exec WHERE bytes = ?`, tag-5); err != nil {
					t.Errorf("delete batch: %v", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			sess := db.Session()
			for op := 0; op < 400; op++ {
				tag := lastTag.Load()
				if tag == 0 {
					continue
				}
				if op%2 == 1 {
					tag = 1 + rand.Int63n(tag) // any historical batch
				}
				row, err := sess.QueryRow(`SELECT COUNT(*) FROM exec WHERE bytes = ?`, tag)
				if err != nil {
					t.Errorf("count: %v", err)
					return
				}
				if n := row[0].AsInt(); n != 0 && n != batchRows {
					t.Errorf("torn batch: tag %d visible with %d of %d rows", tag, n, batchRows)
					return
				}
			}
		}(r)
	}

	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestConcurrentShardWritersAndPersist drives M writers over disjoint
// runids (disjoint shards, so their batches commit in parallel), N
// snapshot readers, and a concurrent Save/Load round-trip loop, all
// under -race. Loaded snapshots must be internally consistent — every
// writer's rows appear in whole batches — and the final table must
// hold exactly what the writers inserted.
func TestConcurrentShardWritersAndPersist(t *testing.T) {
	db := execSchema(t, DefaultShards)
	const writers = 4
	const batches = 40
	const batchRows = 3

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			for b := 0; b < batches; b++ {
				args := make([]any, 0, batchRows*4)
				sql := `INSERT INTO exec VALUES `
				for i := 0; i < batchRows; i++ {
					if i > 0 {
						sql += ", "
					}
					sql += `(?, ?, ?, ?)`
					args = append(args, int64(w), fmt.Sprintf("ds%d", i), int64(b), int64(w))
				}
				if _, err := sess.Exec(sql, args...); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var auxWG sync.WaitGroup
	// Readers: per-run lookups through the composite index (single
	// shard) and scatter counts.
	for r := 0; r < 3; r++ {
		auxWG.Add(1)
		go func(r int) {
			defer auxWG.Done()
			sess := db.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				run := int64(r % writers)
				if _, err := sess.Query(`SELECT timestep, bytes FROM exec WHERE runid = ? AND dataset = 'ds0' AND timestep = ?`, run, int64(r)); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				if _, err := sess.QueryRow(`SELECT COUNT(*) FROM exec`); err != nil {
					t.Errorf("count: %v", err)
					return
				}
			}
		}(r)
	}
	// Persist loop: Save from a snapshot while writers run, Load into a
	// fresh DB, and check batch atomicity inside the loaded image.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := db.Save(&buf); err != nil {
				t.Errorf("save: %v", err)
				return
			}
			loaded := NewWithShards(DefaultShards)
			if err := loaded.Load(&buf); err != nil {
				t.Errorf("load: %v", err)
				return
			}
			for w := 0; w < writers; w++ {
				row, err := loaded.QueryRow(`SELECT COUNT(*) FROM exec WHERE runid = ?`, int64(w))
				if err != nil {
					t.Errorf("loaded count: %v", err)
					return
				}
				if n := row[0].AsInt(); n%batchRows != 0 {
					t.Errorf("loaded snapshot tore writer %d's batch: %d rows", w, n)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	auxWG.Wait()

	row, err := db.QueryRow(`SELECT COUNT(*) FROM exec`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := row[0].AsInt(), int64(writers*batches*batchRows); got != want {
		t.Fatalf("final row count %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		row, err := db.QueryRow(`SELECT COUNT(*) FROM exec WHERE runid = ?`, int64(w))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := row[0].AsInt(), int64(batches*batchRows); got != want {
			t.Fatalf("writer %d: %d rows, want %d", w, got, want)
		}
	}
}

// TestShardedDifferentialRandomized pins the sharded engine
// behaviorally identical to a 1-shard engine: the same randomized
// statement stream (inserts, cross-bucket and cross-shard updates,
// deletes, mid-stream CREATE INDEX forcing a reshard, every plan kind,
// index-served and sorted ORDER BY, aggregates, LIMIT, error paths)
// must produce identical rows in identical order, identical affected
// counts and errors, identical RowsScanned/IndexHits/OrderSkips and
// plan-kind counters, and byte-identical Save images.
func TestShardedDifferentialRandomized(t *testing.T) {
	one := NewWithShards(1)
	many := NewWithShards(8)
	dbs := []*DB{one, many}
	rng := rand.New(rand.NewSource(42))

	exec := func(sql string, args ...any) {
		t.Helper()
		n1, err1 := one.Exec(sql, args...)
		n2, err2 := many.Exec(sql, args...)
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("exec diverged: %s -> (%d,%v) vs (%d,%v)", sql, n1, err1, n2, err2)
		}
		if err1 != nil && err2 != nil && err1.Error() != err2.Error() {
			t.Fatalf("exec errors diverged: %q vs %q", err1, err2)
		}
	}
	query := func(sql string, args ...any) {
		t.Helper()
		r1, err1 := one.Query(sql, args...)
		r2, err2 := many.Query(sql, args...)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query diverged: %s -> %v vs %v", sql, err1, err2)
		}
		if err1 != nil {
			return
		}
		if got, want := rowsString(r2), rowsString(r1); got != want {
			t.Fatalf("%s:\n8 shards:\n%s1 shard:\n%s", sql, got, want)
		}
	}

	for _, db := range dbs {
		if _, err := db.Exec(`CREATE TABLE exec (runid INTEGER, dataset TEXT, timestep INTEGER, bytes INTEGER)`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`CREATE INDEX exec_dataset ON exec (dataset)`); err != nil {
			t.Fatal(err)
		}
	}

	datasets := []string{"pressure", "velocity", "mesh", "energy"}
	insertBatch := func() {
		n := 1 + rng.Intn(4)
		sql := `INSERT INTO exec VALUES `
		args := make([]any, 0, n*4)
		for i := 0; i < n; i++ {
			if i > 0 {
				sql += ", "
			}
			sql += `(?, ?, ?, ?)`
			args = append(args, int64(rng.Intn(6)), datasets[rng.Intn(len(datasets))], int64(rng.Intn(40)), int64(rng.Intn(1000)))
		}
		exec(sql, args...)
	}

	selects := func() {
		run, ds, ts := int64(rng.Intn(6)), datasets[rng.Intn(len(datasets))], int64(rng.Intn(40))
		switch rng.Intn(8) {
		case 0: // composite equality probe (single-shard once resharded)
			query(`SELECT * FROM exec WHERE runid = ? AND dataset = ? AND timestep = ?`, run, ds, ts)
		case 1: // single-column equality
			query(`SELECT runid, timestep FROM exec WHERE dataset = ?`, ds)
		case 2: // range window (timestep index exists in phase 3)
			query(`SELECT * FROM exec WHERE timestep >= ? AND timestep <= ?`, ts, ts+9)
		case 3: // full scan on unindexed column
			query(`SELECT dataset, bytes FROM exec WHERE bytes > ?`, int64(rng.Intn(900)))
		case 4: // index-served ORDER BY, both directions
			if rng.Intn(2) == 0 {
				query(`SELECT dataset, runid, timestep FROM exec ORDER BY dataset`)
			} else {
				query(`SELECT dataset, runid, timestep FROM exec ORDER BY dataset DESC`)
			}
		case 5: // multi-key sort (not index-served)
			query(`SELECT runid, dataset, timestep FROM exec ORDER BY runid, timestep DESC`)
		case 6: // aggregates
			query(`SELECT COUNT(*), MAX(bytes), MIN(timestep) FROM exec WHERE runid = ?`, run)
		case 7: // LIMIT over sorted output
			query(`SELECT runid, dataset, timestep, bytes FROM exec ORDER BY dataset LIMIT 7`)
		}
	}

	mutate := func() {
		switch rng.Intn(5) {
		case 0: // value update, index buckets unchanged
			exec(`UPDATE exec SET bytes = ? WHERE timestep = ?`, int64(rng.Intn(1000)), int64(rng.Intn(40)))
		case 1: // moves composite-index buckets
			exec(`UPDATE exec SET timestep = ? WHERE dataset = ? AND timestep = ?`,
				int64(rng.Intn(40)), datasets[rng.Intn(len(datasets))], int64(rng.Intn(40)))
		case 2: // moves rows across shards (runid is the shard column)
			exec(`UPDATE exec SET runid = ? WHERE runid = ? AND timestep = ?`,
				int64(rng.Intn(6)), int64(rng.Intn(6)), int64(rng.Intn(40)))
		case 3:
			exec(`DELETE FROM exec WHERE runid = ? AND timestep = ?`, int64(rng.Intn(6)), int64(rng.Intn(40)))
		case 4: // mid-batch coercion error: leading rows persist, batch count+error identical
			exec(`INSERT INTO exec VALUES (?, ?, ?, ?), (?, ?, 'boom', ?)`,
				int64(rng.Intn(6)), "errds", int64(rng.Intn(40)), int64(7),
				int64(rng.Intn(6)), "errds2", int64(8))
		}
	}

	// Phase 1: dataset index only (shard column = dataset).
	for i := 0; i < 150; i++ {
		insertBatch()
		if i%3 == 0 {
			selects()
		}
		if i%5 == 0 {
			mutate()
		}
	}
	// Phase 2: the composite index arrives mid-stream; the widest-index
	// rule moves the shard column to runid, resharding live data.
	exec(`CREATE INDEX exec_run_ds_ts ON exec (runid, dataset, timestep)`)
	for i := 0; i < 150; i++ {
		insertBatch()
		selects()
		if i%4 == 0 {
			mutate()
		}
	}
	// Phase 3: a timestep index (no shard-column change) enables ranges.
	exec(`CREATE INDEX exec_ts ON exec (timestep)`)
	for i := 0; i < 100; i++ {
		selects()
		if i%6 == 0 {
			mutate()
		}
	}

	// Counter identity: candidate sets are shard-count independent.
	s1, s8 := one.StatsSnapshot(), many.StatsSnapshot()
	if s1.RowsScanned != s8.RowsScanned {
		t.Errorf("RowsScanned diverged: 1-shard %d vs 8-shard %d", s1.RowsScanned, s8.RowsScanned)
	}
	if s1.IndexHits != s8.IndexHits {
		t.Errorf("IndexHits diverged: %d vs %d", s1.IndexHits, s8.IndexHits)
	}
	if s1.OrderSkips != s8.OrderSkips {
		t.Errorf("OrderSkips diverged: %d vs %d", s1.OrderSkips, s8.OrderSkips)
	}
	if s1.PlanEq != s8.PlanEq || s1.PlanRange != s8.PlanRange || s1.PlanScan != s8.PlanScan {
		t.Errorf("plan counts diverged: (%d,%d,%d) vs (%d,%d,%d)",
			s1.PlanEq, s1.PlanRange, s1.PlanScan, s8.PlanEq, s8.PlanRange, s8.PlanScan)
	}
	if s1.Queries != s8.Queries {
		t.Errorf("Queries diverged: %d vs %d", s1.Queries, s8.Queries)
	}

	// Persist identity: rows serialize in global insertion order, so
	// the snapshot bytes cannot depend on the shard count.
	var b1, b8 bytes.Buffer
	if err := one.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := many.Save(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Errorf("Save bytes differ between shard counts (%d vs %d bytes)", b1.Len(), b8.Len())
	}

	// Round-trip: the 8-shard image loads into either shard count and
	// still answers identically.
	for _, n := range []int{1, 8} {
		loaded := NewWithShards(n)
		if err := loaded.Load(bytes.NewReader(b8.Bytes())); err != nil {
			t.Fatal(err)
		}
		for _, q := range []string{
			`SELECT * FROM exec ORDER BY dataset`,
			`SELECT COUNT(*) FROM exec`,
			`SELECT runid, dataset, timestep FROM exec ORDER BY runid, timestep DESC`,
		} {
			want := rowsString(mustQuery(t, one, q))
			if got := rowsString(mustQuery(t, loaded, q)); got != want {
				t.Fatalf("after Load into %d shards, %s diverged:\n%svs\n%s", n, q, got, want)
			}
		}
	}
}

// TestSessionBasics pins the session/engine split: session statements
// hit the shared data, the session-local statement cache serves
// repeats, and per-goroutine sessions run race-free in parallel.
func TestSessionBasics(t *testing.T) {
	db := execSchema(t, DefaultShards)
	s := db.Session()
	if s.DB() != db {
		t.Fatal("Session.DB() lost its engine")
	}
	if _, err := s.Exec(`INSERT INTO exec VALUES (1, 'p', 0, 10)`); err != nil {
		t.Fatal(err)
	}
	// Visible through the DB and a second session alike.
	for range 3 {
		row, err := db.Session().QueryRow(`SELECT bytes FROM exec WHERE runid = 1 AND dataset = 'p' AND timestep = 0`)
		if err != nil {
			t.Fatal(err)
		}
		if row == nil || row[0].AsInt() != 10 {
			t.Fatalf("session write invisible: %v", row)
		}
	}
	if rows, err := s.Explain(`SELECT * FROM exec WHERE runid = 1 AND dataset = 'p' AND timestep = 0`); err != nil || rows.Len() == 0 {
		t.Fatalf("session explain: %v", err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.Session()
			for i := 0; i < 100; i++ {
				if _, err := sess.Exec(`INSERT INTO exec VALUES (?, 'q', ?, ?)`, int64(g+10), int64(i), int64(i)); err != nil {
					t.Errorf("session exec: %v", err)
					return
				}
				// Repeat statement text exercises the unsynchronized
				// session cache; ORDER BY exercises the sort scratch.
				if _, err := sess.Query(`SELECT timestep FROM exec WHERE runid = ? AND dataset = 'q' AND timestep = ? ORDER BY dataset`, int64(g+10), int64(i)); err != nil {
					t.Errorf("session query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	row, err := db.QueryRow(`SELECT COUNT(*) FROM exec`)
	if err != nil {
		t.Fatal(err)
	}
	if got := row[0].AsInt(); got != 601 {
		t.Fatalf("row count after concurrent sessions: %d, want 601", got)
	}
}

// TestExplainShardsLine pins the EXPLAIN shard-targeting report and
// the single-shard/scatter counters: a composite probe binding the
// shard column reads one shard, everything else scatters.
func TestExplainShardsLine(t *testing.T) {
	db := execSchema(t, 8)
	if _, err := db.Exec(`INSERT INTO exec VALUES (1, 'p', 0, 10), (2, 'q', 1, 20)`); err != nil {
		t.Fatal(err)
	}

	probe := planText(t, db, `SELECT * FROM exec WHERE runid = 1 AND dataset = 'p' AND timestep = 0`)
	if !containsLine(probe, "shards: 1 of 8") {
		t.Errorf("composite probe should target one shard:\n%s", probe)
	}
	scatter := planText(t, db, `SELECT * FROM exec WHERE dataset = 'p'`)
	if !containsLine(scatter, "shards: 8 of 8") {
		t.Errorf("non-shard-column probe should scatter:\n%s", scatter)
	}
	scan := planText(t, db, `SELECT * FROM exec`)
	if !containsLine(scan, "shards: 8 of 8") {
		t.Errorf("scan should scatter:\n%s", scan)
	}

	// EXPLAIN observes without counting; execution moves the split.
	single0, scatter0 := db.ShardPlanCounts()
	if _, err := db.Query(`SELECT * FROM exec WHERE runid = 1 AND dataset = 'p' AND timestep = 0`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT * FROM exec WHERE dataset = 'p'`); err != nil {
		t.Fatal(err)
	}
	single, scatterN := db.ShardPlanCounts()
	if single != single0+1 || scatterN != scatter0+1 {
		t.Errorf("ShardPlanCounts moved (%d,%d) -> (%d,%d), want +1/+1", single0, scatter0, single, scatterN)
	}

	// A 1-shard DB reports every plan as single-shard.
	db1 := execSchema(t, 1)
	if got := planText(t, db1, `SELECT * FROM exec`); !containsLine(got, "shards: 1 of 1") {
		t.Errorf("1-shard scan:\n%s", got)
	}
}

func containsLine(text, line string) bool {
	return bytes.Contains([]byte(text), []byte(line))
}
