package metadb

import (
	"fmt"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

type statement interface{ stmtNode() }

type columnDef struct {
	name string
	kind Kind
}

type createTableStmt struct {
	name        string
	ifNotExists bool
	cols        []columnDef
}

type createIndexStmt struct {
	name        string
	table       string
	columns     []string // one or more: composite indexes list several
	ifNotExists bool
}

type dropTableStmt struct {
	name     string
	ifExists bool
}

type insertStmt struct {
	table string
	cols  []string // empty means all columns in declaration order
	rows  [][]expr
}

type selectItem struct {
	star bool
	agg  string // "", "COUNT", "MAX", "MIN"
	expr expr   // nil for COUNT(*)
	name string // output column label
}

type orderKey struct {
	col  string
	desc bool
}

type selectStmt struct {
	items   []selectItem
	table   string
	where   expr
	orderBy []orderKey
	limit   expr
}

type setClause struct {
	col string
	val expr
}

type updateStmt struct {
	table string
	sets  []setClause
	where expr
}

type deleteStmt struct {
	table string
	where expr
}

// explainStmt wraps a SELECT whose access plan — not its rows — is the
// result (EXPLAIN SELECT ...).
type explainStmt struct {
	sel selectStmt
}

func (createTableStmt) stmtNode() {}
func (createIndexStmt) stmtNode() {}
func (dropTableStmt) stmtNode()   {}
func (insertStmt) stmtNode()      {}
func (selectStmt) stmtNode()      {}
func (updateStmt) stmtNode()      {}
func (deleteStmt) stmtNode()      {}
func (explainStmt) stmtNode()     {}

// Expressions.

type expr interface{ exprNode() }

type litExpr struct{ v Value }
type colExpr struct{ name string }
type paramExpr struct{ idx int }
type binExpr struct {
	op   string
	l, r expr
}
type unaryExpr struct {
	op string
	e  expr
}
type isNullExpr struct {
	e      expr
	negate bool
}

func (litExpr) exprNode()    {}
func (colExpr) exprNode()    {}
func (paramExpr) exprNode()  {}
func (binExpr) exprNode()    {}
func (unaryExpr) exprNode()  {}
func (isNullExpr) exprNode() {}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the token stream.
// ---------------------------------------------------------------------------

type parser struct {
	toks    []token
	pos     int
	nparams int
}

func parse(src string) (statement, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	// Allow one trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, 0, fmt.Errorf("metadb: unexpected %s after statement", p.peek())
	}
	return stmt, p.nparams, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("metadb: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("metadb: expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("metadb: expected identifier, found %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("metadb: expected statement keyword, found %s", t)
	}
	switch t.text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "EXPLAIN":
		return p.parseExplain()
	}
	return nil, fmt.Errorf("metadb: unsupported statement %s", t)
}

func (p *parser) parseExplain() (statement, error) {
	p.next() // EXPLAIN
	if p.peek().kind != tokKeyword || p.peek().text != "SELECT" {
		return nil, fmt.Errorf("metadb: EXPLAIN supports only SELECT, found %s", p.peek())
	}
	inner, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return explainStmt{sel: inner.(selectStmt)}, nil
}

func (p *parser) parseIfNotExists() (bool, error) {
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return false, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) parseCreate() (statement, error) {
	p.next() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		ifne, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []columnDef
		for {
			cname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			cols = append(cols, columnDef{cname, kind})
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return createTableStmt{name: name, ifNotExists: ifne, cols: cols}, nil
	case p.acceptKeyword("INDEX"):
		ifne, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return createIndexStmt{name: name, table: table, columns: cols, ifNotExists: ifne}, nil
	}
	return nil, fmt.Errorf("metadb: expected TABLE or INDEX after CREATE, found %s", p.peek())
}

func (p *parser) parseColumnType() (Kind, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return KindNull, fmt.Errorf("metadb: expected column type, found %s", t)
	}
	p.next()
	var k Kind
	switch t.text {
	case "INTEGER", "INT":
		k = KindInt
	case "REAL", "DOUBLE":
		k = KindReal
	case "TEXT", "VARCHAR":
		k = KindText
	case "BLOB":
		k = KindBlob
	default:
		return KindNull, fmt.Errorf("metadb: unknown column type %s", t)
	}
	// Optional length suffix like VARCHAR(64), ignored.
	if p.acceptSymbol("(") {
		if p.peek().kind != tokInt {
			return KindNull, fmt.Errorf("metadb: expected length in type, found %s", p.peek())
		}
		p.next()
		if err := p.expectSymbol(")"); err != nil {
			return KindNull, err
		}
	}
	return k, nil
}

func (p *parser) parseDrop() (statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return dropTableStmt{name: name, ifExists: ifExists}, nil
}

func (p *parser) parseInsert() (statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptSymbol("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]expr
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return insertStmt{table: table, cols: cols, rows: rows}, nil
}

func (p *parser) parseSelect() (statement, error) {
	p.next() // SELECT
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := selectStmt{items: items, table: table}
	if p.acceptKeyword("WHERE") {
		stmt.where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := orderKey{col: col}
			if p.acceptKeyword("DESC") {
				key.desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.orderBy = append(stmt.orderBy, key)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		stmt.limit, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "*" {
		p.next()
		return selectItem{star: true}, nil
	}
	if agg := aggName(t); agg != "" && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return selectItem{}, err
		}
		if agg == "COUNT" && p.acceptSymbol("*") {
			if err := p.expectSymbol(")"); err != nil {
				return selectItem{}, err
			}
			return selectItem{agg: agg, name: "COUNT(*)"}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return selectItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return selectItem{}, err
		}
		name := agg + "(...)"
		if ce, ok := e.(colExpr); ok {
			name = agg + "(" + ce.name + ")"
		}
		return selectItem{agg: agg, expr: e, name: name}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	name := "expr"
	if ce, ok := e.(colExpr); ok {
		name = ce.name
	}
	return selectItem{expr: e, name: name}, nil
}

func (p *parser) parseUpdate() (statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	var sets []setClause
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, setClause{col, e})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	stmt := updateStmt{table: table, sets: sets}
	if p.acceptKeyword("WHERE") {
		stmt.where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseDelete() (statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := deleteStmt{table: table}
	if p.acceptKeyword("WHERE") {
		var err error
		stmt.where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr (( = | != | <> | < | <= | > | >= ) addExpr
//	           | IS [NOT] NULL)?
//	addExpr  := mulExpr (( + | - ) mulExpr)*
//	mulExpr  := unary (( * | / ) unary)*
//	unary    := - unary | primary
//	primary  := literal | ? | ident | ( expr )
func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binExpr{"OR", l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binExpr{"AND", l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return unaryExpr{"NOT", e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return isNullExpr{l, negate}, nil
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return binExpr{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binExpr{t.text, l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binExpr{t.text, l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{"-", e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metadb: bad integer literal %q", t.text)
		}
		return litExpr{Int(v)}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("metadb: bad float literal %q", t.text)
		}
		return litExpr{Real(v)}, nil
	case tokString:
		p.next()
		return litExpr{Text(t.text)}, nil
	case tokParam:
		p.next()
		e := paramExpr{p.nparams}
		p.nparams++
		return e, nil
	case tokIdent:
		p.next()
		return colExpr{t.text}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.next()
			return litExpr{Null()}, nil
		}
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("metadb: unexpected %s in expression", t)
}

// aggName reports the aggregate function a token names ("" if none).
// Aggregates are contextual keywords: `min` is an aggregate only when
// called as min(...), and an ordinary column name otherwise.
func aggName(t token) string {
	if t.kind != tokIdent {
		return ""
	}
	switch strings.ToUpper(t.text) {
	case "COUNT", "MAX", "MIN":
		return strings.ToUpper(t.text)
	}
	return ""
}

// normalizeIdent lower-cases identifiers so the dialect is
// case-insensitive for table and column names.
func normalizeIdent(s string) string { return strings.ToLower(s) }
