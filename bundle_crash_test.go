package sdm

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The crash suite simulates a process killed mid-SaveBundle — at every
// WAL boundary, and at every byte offset of the log itself — and
// demands the recovery invariant: reopening the bundle always yields
// exactly the old state or exactly the new one, files and catalog
// agreeing on which, with fsck finding nothing to complain about.

// errInjectedCrash is what the crash hook kills a save with.
var errInjectedCrash = errors.New("injected crash")

// crashPattern builds deterministic file contents: version-tagged so
// old and new bytes are distinguishable, sized to cross cas chunk
// boundaries.
func crashPattern(tag byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag ^ byte(i*31)
	}
	return p
}

// crashCluster stages a file set and a catalog marker row recording
// which version of the state this cluster holds.
func crashCluster(t *testing.T, files map[string][]byte, marker string) *Cluster {
	t.Helper()
	cl := NewCluster(ClusterConfig{Procs: 2})
	for name, data := range files {
		if err := cl.StageFile(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.DB.Exec(`CREATE TABLE IF NOT EXISTS crash_marker (version TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DB.Exec(`INSERT INTO crash_marker VALUES (?)`, marker); err != nil {
		t.Fatal(err)
	}
	return cl
}

// readBundleState opens the bundle (running recovery) and returns its
// files and the catalog's version marker.
func readBundleState(t *testing.T, dir string) (map[string][]byte, string) {
	t.Helper()
	cl, err := OpenBundle(dir, ClusterConfig{Procs: 2})
	if err != nil {
		t.Fatalf("opening recovered bundle: %v", err)
	}
	files := map[string][]byte{}
	for _, name := range cl.ListFiles() {
		data, err := cl.ReadFile(name)
		if err != nil {
			t.Fatalf("reading %q from recovered bundle: %v", name, err)
		}
		files[name] = data
	}
	row, err := cl.DB.QueryRow(`SELECT version FROM crash_marker`)
	if err != nil {
		t.Fatalf("reading catalog marker: %v", err)
	}
	return files, row[0].AsText()
}

// sameFiles reports whether two file sets are byte-identical.
func sameFiles(got, want map[string][]byte) bool {
	if len(got) != len(want) {
		return false
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			return false
		}
	}
	return true
}

// assertFsckClean runs the verifier in strict (non-repair) mode and
// fails on anything it finds.
func assertFsckClean(t *testing.T, dir, ctx string) {
	t.Helper()
	rep, err := FsckBundle(dir, false)
	if err != nil {
		t.Fatalf("%s: fsck: %v", ctx, err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("%s: fsck found %d error(s): %v", ctx, len(rep.Errors), rep.Errors)
	}
}

// crashOldFiles and crashNewFiles are the two bundle states the matrix
// flips between: one file changes content, one survives unchanged (the
// cas dedup path), one disappears (the sweep path), one is born.
func crashOldFiles() map[string][]byte {
	return map[string][]byte{
		"a.dat":    crashPattern('A', 3000),
		"keep.dat": crashPattern('K', 1500),
		"gone.dat": crashPattern('G', 700),
	}
}

func crashNewFiles() map[string][]byte {
	return map[string][]byte{
		"a.dat":    crashPattern('Z', 3100),
		"keep.dat": crashPattern('K', 1500),
		"new.dat":  crashPattern('N', 900),
	}
}

// runCrashMatrix kills a save at WAL boundary #k for k = 0, 1, 2, ...
// until a run completes uncrashed, asserting after every kill that
// recovery lands the bundle on exactly-old or exactly-new — and on the
// side of the commit point the kill dictates.
func runCrashMatrix(t *testing.T, opts BundleOptions) {
	oldFiles, newFiles := crashOldFiles(), crashNewFiles()
	var points []string
	for k := 0; ; k++ {
		dir := filepath.Join(t.TempDir(), "bundle")
		if err := crashCluster(t, oldFiles, "old").SaveBundleOpts(dir, opts); err != nil {
			t.Fatalf("boundary %d: seeding old bundle: %v", k, err)
		}
		calls := 0
		crashed := ""
		copts := opts
		copts.crashFn = func(point string) error {
			if calls == k {
				crashed = point
				calls++
				return fmt.Errorf("at %s: %w", point, errInjectedCrash)
			}
			calls++
			return nil
		}
		err := crashCluster(t, newFiles, "new").SaveBundleOpts(dir, copts)
		if err == nil {
			// k is past the last boundary: the save ran to completion.
			files, marker := readBundleState(t, dir)
			if marker != "new" || !sameFiles(files, newFiles) {
				t.Fatalf("uncrashed save: marker %q, files match new: %v", marker, sameFiles(files, newFiles))
			}
			if _, err := os.Stat(filepath.Join(dir, "wal.log")); !os.IsNotExist(err) {
				t.Fatal("completed save left wal.log behind")
			}
			assertFsckClean(t, dir, "uncrashed save")
			break
		}
		if !errors.Is(err, errInjectedCrash) {
			t.Fatalf("boundary %d: save failed for real: %v", k, err)
		}
		points = append(points, crashed)

		files, marker := readBundleState(t, dir)
		var want map[string][]byte
		switch marker {
		case "old":
			want = oldFiles
		case "new":
			want = newFiles
		default:
			t.Fatalf("killed at %q: marker %q is neither old nor new", crashed, marker)
		}
		if !sameFiles(files, want) {
			t.Fatalf("killed at %q: files do not match the %q state the catalog claims", crashed, marker)
		}
		// The commit point divides the outcomes exactly: a sealed log
		// rolls forward, anything earlier rolls back.
		wantNew := crashed == "wal-committed" || strings.HasPrefix(crashed, "apply-")
		if wantNew != (marker == "new") {
			t.Fatalf("killed at %q: recovered to %q, want new=%v", crashed, marker, wantNew)
		}
		if _, err := os.Stat(filepath.Join(dir, "wal.log")); !os.IsNotExist(err) {
			t.Fatalf("killed at %q: recovery left wal.log behind", crashed)
		}
		assertFsckClean(t, dir, fmt.Sprintf("killed at %q", crashed))
	}
	// The matrix must have actually walked the whole protocol.
	if len(points) < 12 {
		t.Fatalf("only %d crash boundaries exercised: %v", len(points), points)
	}
	for _, must := range []string{"wal-begin", "wal-intents-synced", "data-synced", "wal-committed", "apply-sweep", "apply-manifest"} {
		found := false
		for _, p := range points {
			if p == must {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("crash matrix never hit boundary %q (saw %v)", must, points)
		}
	}
	t.Logf("survived kills at %d boundaries: %v", len(points), points)
}

func TestBundleCrashMatrixDir(t *testing.T) {
	runCrashMatrix(t, BundleOptions{Backend: "dir"})
}

func TestBundleCrashMatrixCAS(t *testing.T) {
	runCrashMatrix(t, BundleOptions{Backend: "cas", Compress: true, ChunkSize: 512})
}

// copyTree clones a bundle directory for destructive surgery.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBundleCrashWALTruncation builds a bundle whose save was killed
// right after the commit record, then replays recovery against the log
// truncated at EVERY byte offset — the "kill at any byte offset"
// guarantee. A whole commit record rolls forward to the new state; any
// shorter prefix rolls back to the old one; nothing in between.
func TestBundleCrashWALTruncation(t *testing.T) {
	oldFiles, newFiles := crashOldFiles(), crashNewFiles()
	opts := BundleOptions{Backend: "dir"}
	fixture := filepath.Join(t.TempDir(), "fixture")
	if err := crashCluster(t, oldFiles, "old").SaveBundleOpts(fixture, opts); err != nil {
		t.Fatal(err)
	}
	copts := opts
	copts.crashFn = func(point string) error {
		if point == "wal-committed" {
			return errInjectedCrash
		}
		return nil
	}
	if err := crashCluster(t, newFiles, "new").SaveBundleOpts(fixture, copts); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("fixture save = %v, want injected crash", err)
	}
	wal, err := os.ReadFile(filepath.Join(fixture, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}

	sawOld, sawNew := 0, 0
	for n := 0; n <= len(wal); n++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut%d", n))
		copyTree(t, fixture, dir)
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), wal[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		files, marker := readBundleState(t, dir)
		var want map[string][]byte
		switch marker {
		case "old":
			want = oldFiles
			sawOld++
		case "new":
			want = newFiles
			sawNew++
		default:
			t.Fatalf("wal cut at %d/%d bytes: marker %q", n, len(wal), marker)
		}
		if !sameFiles(files, want) {
			t.Fatalf("wal cut at %d/%d bytes: files do not match the %q state", n, len(wal), marker)
		}
		if _, err := os.Stat(filepath.Join(dir, "wal.log")); !os.IsNotExist(err) {
			t.Fatalf("wal cut at %d bytes: recovery left wal.log behind", n)
		}
	}
	// Only the untruncated log carries the whole commit record.
	if sawNew != 1 || sawOld != len(wal) {
		t.Fatalf("recovery outcomes: %d old, %d new over %d offsets — want exactly one roll-forward", sawOld, sawNew, len(wal)+1)
	}
}

// TestBundleCrashGCSaveRace is the regression test for GC reclaiming a
// concurrent save's freshly staged objects: a save and a GC race on
// the same directory, and whichever order the lock serializes them in,
// the save's state must land intact.
func TestBundleCrashGCSaveRace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	opts := BundleOptions{Backend: "cas", ChunkSize: 512}
	if err := crashCluster(t, crashOldFiles(), "v0").SaveBundleOpts(dir, opts); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 15; i++ {
		files := map[string][]byte{
			"a.dat":                     crashPattern(byte(i), 3000),
			"keep.dat":                  crashPattern('K', 1500),
			fmt.Sprintf("gen%d.dat", i): crashPattern(byte(i), 800),
		}
		marker := fmt.Sprintf("v%d", i)
		cl := crashCluster(t, files, marker)
		var wg sync.WaitGroup
		var saveErr, gcErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			saveErr = cl.SaveBundleOpts(dir, opts)
		}()
		go func() {
			defer wg.Done()
			_, gcErr = GCBundle(dir)
		}()
		wg.Wait()
		if saveErr != nil {
			t.Fatalf("round %d: save: %v", i, saveErr)
		}
		if gcErr != nil {
			t.Fatalf("round %d: gc: %v", i, gcErr)
		}
		got, gotMarker := readBundleState(t, dir)
		if gotMarker != marker || !sameFiles(got, files) {
			t.Fatalf("round %d: bundle lost the racing save's state (marker %q)", i, gotMarker)
		}
		assertFsckClean(t, dir, fmt.Sprintf("race round %d", i))
	}
}

// TestBundleCrashSaveUnderFaults drives the whole save/open path
// through a fault-injecting backend behind retries and demands the
// result is indistinguishable from a clean save: same files, same
// catalog, fsck-clean — and that faults actually fired.
func TestBundleCrashSaveUnderFaults(t *testing.T) {
	files := crashNewFiles()
	for _, backend := range []string{"dir", "cas"} {
		t.Run(backend, func(t *testing.T) {
			cleanDir := filepath.Join(t.TempDir(), "clean")
			faultDir := filepath.Join(t.TempDir(), "faulty")
			if err := crashCluster(t, files, "v").SaveBundleOpts(cleanDir, BundleOptions{Backend: backend}); err != nil {
				t.Fatal(err)
			}
			// Ops nil = the idempotent set, which the default retry
			// policy masks without namespace-op opt-in.
			faults := FaultConfig{Seed: 21, Transient: 0.05, TornWrite: 0.1, PartialRead: 0.1}
			retry := RetryPolicy{MaxAttempts: 25, Seed: 21}
			err := crashCluster(t, files, "v").SaveBundleOpts(faultDir, BundleOptions{
				Backend: backend, Faults: &faults, Retry: &retry,
			})
			if err != nil {
				t.Fatalf("save under faults: %v", err)
			}

			cleanFiles, cleanMarker := readBundleState(t, cleanDir)
			// Read back through a faulty backend too: the open path
			// masks injected read faults the same way.
			cl, err := OpenBundleOpts(faultDir, ClusterConfig{Procs: 2}, BundleOptions{Faults: &faults, Retry: &retry})
			if err != nil {
				t.Fatalf("open under faults: %v", err)
			}
			gotFiles := map[string][]byte{}
			for _, name := range cl.ListFiles() {
				data, err := cl.ReadFile(name)
				if err != nil {
					t.Fatalf("reading %q under faults: %v", name, err)
				}
				gotFiles[name] = data
			}
			row, err := cl.DB.QueryRow(`SELECT version FROM crash_marker`)
			if err != nil {
				t.Fatal(err)
			}
			if marker := row[0].AsText(); marker != cleanMarker {
				t.Fatalf("marker %q under faults, %q clean", marker, cleanMarker)
			}
			if !sameFiles(gotFiles, cleanFiles) {
				t.Fatal("bundle saved under faults diverges from the clean save")
			}
			assertFsckClean(t, faultDir, "save under faults")
		})
	}
}

// TestBundleCrashFsck covers the verifier itself: strict mode flags a
// pending WAL, orphan objects, and orphan cas chunks; repair mode fixes
// all three and leaves a bundle strict mode then blesses.
func TestBundleCrashFsck(t *testing.T) {
	t.Run("pending-wal", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "bundle")
		opts := BundleOptions{Backend: "dir"}
		if err := crashCluster(t, crashOldFiles(), "old").SaveBundleOpts(dir, opts); err != nil {
			t.Fatal(err)
		}
		copts := opts
		copts.crashFn = func(point string) error {
			if point == "stage-catalog" {
				return errInjectedCrash
			}
			return nil
		}
		if err := crashCluster(t, crashNewFiles(), "new").SaveBundleOpts(dir, copts); !errors.Is(err, errInjectedCrash) {
			t.Fatalf("fixture save = %v", err)
		}
		rep, err := FsckBundle(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.WALPending || rep.WALSealed || len(rep.Errors) == 0 {
			t.Fatalf("strict fsck on crashed bundle: %+v", rep)
		}
		rep, err = FsckBundle(dir, true)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WALAction != "rolled-back" || len(rep.Errors) != 0 {
			t.Fatalf("repair fsck: action %q, errors %v", rep.WALAction, rep.Errors)
		}
		assertFsckClean(t, dir, "after repair")
		if _, marker := readBundleState(t, dir); marker != "old" {
			t.Fatalf("rolled-back bundle has marker %q", marker)
		}
	})

	t.Run("orphans", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "bundle")
		if err := crashCluster(t, crashOldFiles(), "old").SaveBundleOpts(dir, BundleOptions{Backend: "cas", ChunkSize: 512}); err != nil {
			t.Fatal(err)
		}
		orphan := filepath.Join(dir, "data", "chunks", "zz", strings.Repeat("cd", 32))
		if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(orphan, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := FsckBundle(dir, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Orphans == 0 || len(rep.Errors) == 0 {
			t.Fatalf("strict fsck missed the planted orphan: %+v", rep)
		}
		if rep, err = FsckBundle(dir, true); err != nil || len(rep.Errors) != 0 {
			t.Fatalf("repair fsck: %v %+v", err, rep)
		}
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Fatal("orphan chunk survived repair")
		}
		assertFsckClean(t, dir, "after orphan repair")
	})
}
