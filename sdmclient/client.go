// Package sdmclient is the client SDK for sdmd, the network-attached
// SDM daemon. It speaks the wire protocol defined in sdm/internal/wire
// (JSON for metadata, octet-stream for dataset bytes) and is what the
// -remote modes of sdmcat and sdmls are built on, so every consumer
// maps HTTP status codes to Go errors the same way: a refused
// connection surfaces as ErrUnreachable ("is sdmd running?"), an
// unknown run/dataset/timestep/session as ErrNotFound — two very
// different operator problems that must not read alike.
//
//	c := sdmclient.New("http://localhost:8080")
//	at, err := c.Attach(sdmclient.AttachOptions{})   // latest run
//	buf, err := c.ReadDataset(at.Run.RunID, "pressure", 2)
//
// A Client is safe for concurrent use by multiple goroutines; the
// attached session (at most one per Client) is mutex-guarded.
package sdmclient

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"sdm/internal/wire"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrUnreachable wraps transport failures: the daemon is down,
	// the address is wrong, or the network ate the connection.
	ErrUnreachable = errors.New("sdmd unreachable")
	// ErrNotFound maps HTTP 404: the run, dataset, timestep, bundle,
	// or session does not exist on a perfectly healthy daemon.
	ErrNotFound = errors.New("not found")
	// ErrBadRequest maps HTTP 400.
	ErrBadRequest = errors.New("bad request")
	// ErrRange maps HTTP 416: a read outside the dataset's bounds.
	ErrRange = errors.New("range not satisfiable")
)

// Client talks to one sdmd daemon.
type Client struct {
	base   string
	bundle string
	http   *http.Client

	mu      sync.Mutex
	session string
	run     int64
}

// Option configures a Client.
type Option func(*Client)

// WithBundle pins the client to a named bundle on a multi-bundle
// daemon (default: the daemon's first mount).
func WithBundle(name string) Option {
	return func(c *Client) { c.bundle = name }
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// custom transports, httptest clients).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for the daemon at baseURL (e.g.
// "http://localhost:8080"). No connection is made until the first
// call; use Ping to probe liveness.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 2 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// url assembles an endpoint URL, tacking on the bundle qualifier.
func (c *Client) url(path string) string {
	u := c.base + path
	if c.bundle != "" {
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		u += sep + "bundle=" + url.QueryEscape(c.bundle)
	}
	return u
}

// do runs one request and maps the failure modes: transport errors →
// ErrUnreachable, non-2xx → the sentinel for its status, with the
// server's message attached. On success the caller owns the body.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	if c.session != "" {
		req.Header.Set(wire.SessionHeader, c.session)
	}
	c.mu.Unlock()
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (is sdmd running at %s?)", ErrUnreachable, err, c.base)
	}
	if resp.StatusCode < 400 {
		return resp, nil
	}
	defer resp.Body.Close()
	var we wire.Error
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&we) == nil && we.Message != "" {
		msg = we.Message
	}
	sentinel := errors.New(resp.Status)
	switch resp.StatusCode {
	case http.StatusNotFound:
		sentinel = ErrNotFound
	case http.StatusBadRequest:
		sentinel = ErrBadRequest
	case http.StatusRequestedRangeNotSatisfiable:
		sentinel = ErrRange
	}
	return nil, fmt.Errorf("%w: %s", sentinel, msg)
}

// getJSON GETs an endpoint and decodes the JSON body into out.
func (c *Client) getJSON(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs a JSON body and decodes the JSON response into out.
func (c *Client) postJSON(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Ping probes the daemon, returning its mounted bundle names.
func (c *Client) Ping() (wire.Ping, error) {
	var p wire.Ping
	err := c.getJSON("/v1/ping", &p)
	return p, err
}

// Runs lists the bundle's run_table.
func (c *Client) Runs() ([]wire.Run, error) {
	var out []wire.Run
	err := c.getJSON("/v1/runs", &out)
	return out, err
}

// Datasets lists a run's registered datasets (access_pattern_table).
func (c *Client) Datasets(run int64) ([]wire.Dataset, error) {
	var out []wire.Dataset
	err := c.getJSON(fmt.Sprintf("/v1/runs/%d/datasets", run), &out)
	return out, err
}

// Writes lists a run's recorded writes (execution_table).
func (c *Client) Writes(run int64) ([]wire.WriteRecord, error) {
	var out []wire.WriteRecord
	err := c.getJSON(fmt.Sprintf("/v1/runs/%d/writes", run), &out)
	return out, err
}

// Imports lists a run's imported arrays (import_table).
func (c *Client) Imports(run int64) ([]wire.ImportEntry, error) {
	var out []wire.ImportEntry
	err := c.getJSON(fmt.Sprintf("/v1/runs/%d/imports", run), &out)
	return out, err
}

// Histories lists the bundle's registered index histories (index_table).
func (c *Client) Histories() ([]wire.IndexHistory, error) {
	var out []wire.IndexHistory
	err := c.getJSON("/v1/histories", &out)
	return out, err
}

// Lookup resolves a batch of (dataset, timestep) placements in one
// round trip; missing slabs come back as nil slots, in key order.
func (c *Client) Lookup(run int64, keys []wire.WriteKey) ([]*wire.WriteRecord, error) {
	var out wire.LookupResponse
	err := c.postJSON(fmt.Sprintf("/v1/runs/%d/lookup", run), wire.LookupRequest{Keys: keys}, &out)
	return out.Records, err
}

// AttachOptions selects what to attach to.
type AttachOptions struct {
	// Run picks a run id; 0 attaches to the bundle's latest run.
	Run int64
}

// Attach opens a session on a run (the network form of
// Options.AttachRun). The session id rides every subsequent request
// from this client in the X-Sdm-Session header until Detach.
func (c *Client) Attach(opts AttachOptions) (wire.AttachResponse, error) {
	var out wire.AttachResponse
	err := c.postJSON("/v1/sessions", wire.AttachRequest{Bundle: c.bundle, Run: opts.Run}, &out)
	if err != nil {
		return out, err
	}
	c.mu.Lock()
	c.session = out.Session
	c.run = out.Run.RunID
	c.mu.Unlock()
	return out, nil
}

// Session reports the client's current session id ("" if detached).
func (c *Client) Session() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Detach ends the client's session. Detaching an expired or already
// detached session returns ErrNotFound; the client forgets the session
// either way.
func (c *Client) Detach() error {
	c.mu.Lock()
	id := c.session
	c.session = ""
	c.run = 0
	c.mu.Unlock()
	if id == "" {
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, c.url("/v1/sessions/"+url.PathEscape(id)), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// OpenDataset streams one written slab: the full global array of a
// dataset at a timestep, or the [off, off+n) byte range of it when n
// is positive. The caller must Close the reader. Size is the exact
// byte length of the stream.
func (c *Client) OpenDataset(run int64, dataset string, timestep, off, n int64) (rd io.ReadCloser, size int64, err error) {
	// Dataset names are user data; escape so '/', '?', '%', and spaces
	// can't reroute or break the request path.
	path := fmt.Sprintf("/v1/read/%d/%s/%d", run, url.PathEscape(dataset), timestep)
	var params []string
	if off != 0 {
		params = append(params, "off="+strconv.FormatInt(off, 10))
	}
	if n > 0 {
		params = append(params, "len="+strconv.FormatInt(n, 10))
	}
	if len(params) > 0 {
		path += "?" + strings.Join(params, "&")
	}
	req, err := http.NewRequest(http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, 0, err
	}
	return resp.Body, resp.ContentLength, nil
}

// ReadDataset reads a full slab into memory: every byte of the
// dataset's global array at the given timestep, exactly as a local
// bundle read through the catalog would produce it.
func (c *Client) ReadDataset(run int64, dataset string, timestep int64) ([]byte, error) {
	return c.ReadRange(run, dataset, timestep, 0, -1)
}

// ReadRange reads [off, off+n) of a slab; n < 0 means "to the end".
func (c *Client) ReadRange(run int64, dataset string, timestep, off, n int64) ([]byte, error) {
	rd, size, err := c.OpenDataset(run, dataset, timestep, off, n)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var buf bytes.Buffer
	if size > 0 {
		buf.Grow(int(size))
	}
	if _, err := io.Copy(&buf, rd); err != nil {
		return nil, fmt.Errorf("%w: short read: %s", ErrUnreachable, err)
	}
	if size >= 0 && int64(buf.Len()) != size {
		return nil, fmt.Errorf("%w: short body: got %d of %d bytes", ErrUnreachable, buf.Len(), size)
	}
	return buf.Bytes(), nil
}

// CacheStats snapshots the daemon's block cache.
func (c *Client) CacheStats() (wire.CacheStats, error) {
	var st wire.CacheStats
	err := c.getJSON("/v1/cache", &st)
	return st, err
}

// MetricsText fetches the daemon's metrics dump (sorted "key value"
// lines).
func (c *Client) MetricsText() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
