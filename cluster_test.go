package sdm_test

import (
	"os"
	"path/filepath"
	"testing"

	"sdm"
	"sdm/meshgen"
	"sdm/partitioner"
)

func TestClusterDefaults(t *testing.T) {
	cl := sdm.NewCluster(sdm.ClusterConfig{})
	if cl.Procs() != 4 {
		t.Fatalf("default procs = %d", cl.Procs())
	}
	if cl.FS == nil || cl.DB == nil || cl.Catalog == nil || cl.World == nil {
		t.Fatal("cluster parts missing")
	}
}

func TestClusterRoundTripThroughPublicAPI(t *testing.T) {
	cl := sdm.NewCluster(sdm.ClusterConfig{Procs: 3})
	const globalN = 30
	err := cl.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("facade", sdm.Options{Organization: sdm.Level2})
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Finalize()
		attrs := sdm.MakeDatalist("d")
		attrs[0].GlobalSize = globalN
		g, err := s.SetAttributes(attrs)
		if err != nil {
			t.Error(err)
			return
		}
		var m []int32
		for i := p.Rank(); i < globalN; i += p.Size() {
			m = append(m, int32(i))
		}
		if _, err := g.DataView([]string{"d"}, m); err != nil {
			t.Error(err)
			return
		}
		vals := make([]float64, len(m))
		for i, gi := range m {
			vals[i] = float64(gi) * 2
		}
		if err := g.WriteFloat64s("d", 5, vals); err != nil {
			t.Error(err)
			return
		}
		got, err := g.ReadFloat64s("d", 5, len(m))
		if err != nil {
			t.Error(err)
			return
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("rank %d: element %d mismatch", p.Rank(), i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if len(cl.ListFiles()) != 1 {
		t.Fatalf("files = %v", cl.ListFiles())
	}
}

func TestSaveLoadCatalog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.db")
	cl := sdm.NewCluster(sdm.ClusterConfig{Procs: 2})
	err := cl.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("persisted", sdm.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SaveCatalog(path); err != nil {
		t.Fatal(err)
	}
	cl2 := sdm.NewCluster(sdm.ClusterConfig{Procs: 2})
	if err := cl2.LoadCatalog(path); err != nil {
		t.Fatal(err)
	}
	runs, err := cl2.Catalog.Runs(nil)
	if err != nil || len(runs) != 1 || runs[0].Application != "persisted" {
		t.Fatalf("restored runs = %+v, %v", runs, err)
	}
	if err := cl2.LoadCatalog(filepath.Join(dir, "missing.db")); err == nil {
		t.Fatal("loading missing catalog succeeded")
	}
}

func TestAttachStorageSharesHistoryAcrossClusters(t *testing.T) {
	m, err := meshgen.GenerateTet(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	msh, layout, err := meshgen.EncodeMsh(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := partitioner.FromEdges(m.NumNodes(), m.Edge1, m.Edge2)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := partitioner.Multilevel(g, 4, partitioner.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	base := sdm.NewCluster(sdm.ClusterConfig{Procs: 4})
	if err := base.StageFile("uns3d.msh", msh); err != nil {
		t.Fatal(err)
	}
	runOnce := func(cl *sdm.Cluster) (fromHist bool) {
		err := cl.Run(func(p *sdm.Proc) {
			s, err := p.Initialize("attach", sdm.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Finalize()
			imp, err := s.MakeImportlist("uns3d.msh", []sdm.ImportSpec{
				{Name: "edge1", Type: sdm.Integer, FileOffset: layout.Edge1Offset(), Length: layout.NumEdges, Content: "INDEX"},
				{Name: "edge2", Type: sdm.Integer, FileOffset: layout.Edge2Offset(), Length: layout.NumEdges, Content: "INDEX"},
			})
			if err != nil {
				t.Error(err)
				return
			}
			ip, err := s.PartitionIndex(imp, "edge1", "edge2", vec)
			if err != nil {
				t.Error(err)
				return
			}
			if p.Rank() == 0 {
				fromHist = ip.FromHistory
			}
			if !ip.FromHistory {
				if err := s.IndexRegistry(ip, layout.NumEdges, vec); err != nil {
					t.Error(err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return fromHist
	}
	if runOnce(base) {
		t.Fatal("cold run found phantom history")
	}
	// A second cluster attached to the same storage sees the history.
	second := sdm.NewCluster(sdm.ClusterConfig{Procs: 4})
	second.AttachStorage(base)
	if !runOnce(second) {
		t.Fatal("attached cluster did not find the history")
	}
}

func TestDumpFiles(t *testing.T) {
	dir := t.TempDir()
	cl := sdm.NewCluster(sdm.ClusterConfig{Procs: 1})
	if err := cl.StageFile("hello.dat", []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := cl.DumpFiles(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "hello.dat"))
	if err != nil || string(data) != "world" {
		t.Fatalf("dumped file: %q, %v", data, err)
	}
}

func TestOrigin2000Config(t *testing.T) {
	cfg := sdm.Origin2000Config(64)
	if cfg.Procs != 64 {
		t.Fatalf("procs = %d", cfg.Procs)
	}
	if cfg.Storage.NumServers != 10 {
		t.Fatalf("servers = %d; the paper's platform had 10 FC controllers", cfg.Storage.NumServers)
	}
	if cfg.Network.Bandwidth <= 0 || cfg.Network.Latency <= 0 {
		t.Fatal("network profile empty")
	}
}

func TestPublicMeshgenAndPartitioner(t *testing.T) {
	m, err := meshgen.GenerateTet(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep through the public API.
	p, q := meshgen.SweepSerial(m.Edge1, m.Edge2, m.EdgeData(0), m.NodeData(0), m.NumNodes())
	if len(p) != m.NumNodes() || len(q) != m.NumNodes() {
		t.Fatal("sweep result sizes wrong")
	}
	// Encode/decode through the public API.
	buf, layout, err := meshgen.EncodeMsh(m, [][]float64{m.EdgeData(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e1, _, ed, _, err := meshgen.DecodeMsh(buf, layout)
	if err != nil || len(e1) != m.NumEdges() || len(ed) != 1 {
		t.Fatalf("decode: %v", err)
	}
	// RT through the public API.
	rt := meshgen.NewRT(m)
	if rt.NumTriangles() == 0 || len(rt.NodeDataset(0)) != m.NumNodes() {
		t.Fatal("RT datasets wrong")
	}
	// Partitioner baselines.
	if v := partitioner.Block(10, 2); len(v) != 10 {
		t.Fatal("block vector wrong")
	}
	if v := partitioner.Random(10, 2, 1); v.Validate(2) != nil {
		t.Fatal("random vector invalid")
	}
}
