// Command sdmd serves SDM run bundles over HTTP: a network-attached
// face for the paper's "second user reads the first user's run"
// scenario. Point it at one or more bundle directories and any process
// with a socket — a remote sdmcat, a curl one-liner, a sdmclient
// program — can list runs, resolve placements, and stream dataset
// bytes, all through a bounded read-through block cache.
//
//	sdmd -addr :8080 /data/bundles/run42
//	sdmd -addr :8080 -cache-mb 128 /data/a /data/b   # multi-bundle
//
// With several bundles, each mounts under its directory's base name
// (?bundle=NAME selects one; the first is the default). Metrics are
// at /v1/metrics, cache stats at /v1/cache.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sdm"
	"sdm/internal/obs"
	"sdm/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 64, "block cache capacity in MiB")
	blockKB := flag.Int64("block-kb", 256, "block cache granularity in KiB")
	idle := flag.Duration("idle-timeout", server.DefaultIdleTimeout, "reap sessions idle for this long")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdmd [flags] BUNDLEDIR [BUNDLEDIR...]\n\n")
		fmt.Fprintf(os.Stderr, "Serve SDM run bundles over HTTP.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	metrics := obs.NewRegistry()
	srv := server.New(server.Config{
		CacheBytes:  *cacheMB << 20,
		BlockSize:   *blockKB << 10,
		IdleTimeout: *idle,
		Metrics:     metrics,
	})

	for _, dir := range flag.Args() {
		name := filepath.Base(filepath.Clean(dir))
		cl, err := sdm.OpenBundle(dir, sdm.ClusterConfig{})
		if err != nil {
			log.Fatalf("sdmd: opening bundle %s: %v", dir, err)
		}
		if err := srv.Mount(name, server.Source{Catalog: cl.Catalog, FS: cl.FS}); err != nil {
			log.Fatalf("sdmd: %v", err)
		}
		log.Printf("sdmd: mounted %s as %q", dir, name)
	}

	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Minute, // streams of large slabs
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("sdmd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shctx)
	}()

	log.Printf("sdmd: serving %d bundle(s) on http://%s (cache %d MiB, block %d KiB)",
		len(srv.Bundles()), *addr, *cacheMB, *blockKB)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sdmd: %v", err)
	}
}
