package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"sdm"
	"sdm/internal/server"
	"sdm/internal/store/objstore"
	"sdm/sdmclient"
)

// objstorePartSize is the multipart threshold the tier experiment
// saves with — small enough that every checkpoint file uploads as
// multiple parts.
const objstorePartSize = 1 << 20

// runObjstore prices the storage tier: the same FUN3D checkpoint
// cluster is saved straight into the simulated object store (multipart
// PUTs), served cold through the sdmd core (ranged GETs filling the
// block cache), re-read warm (which must be remote-silent — the
// promotion gate), and finally migrated back to a hot directory
// bundle. Wall times are host costs; the remote's own ledger —
// requests, parts, bytes, busy seconds, microcents — is reported
// alongside. None of it touches a simulated rank clock, so every sim-*
// metric elsewhere in this file is unchanged by tiering.
func runObjstore(nx, procs, steps int, bl *benchLog) {
	fmt.Printf("\n=== Objstore: tiered storage — multipart save, cold attach, warm promoted reads ===\n")
	f := newFUN3D(nx)
	cl := newCluster(sdm.Origin2000Config(procs))
	if err := f.Stage(cl); err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteReadBandwidth(cl, sdm.Level3, steps); err != nil {
		log.Fatal(err)
	}

	tmp, err := os.MkdirTemp("", "sdmbench-objstore-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	cold := filepath.Join(tmp, "cold")
	endpoint := "sim://sdmbench/" + filepath.Base(tmp)
	defer objstore.Drop(endpoint)
	cfg := map[string]any{"nx": nx, "procs": procs, "steps": steps, "part_size": objstorePartSize}

	// Phase 1: multipart save into the cold tier.
	saveWall, saveAllocs, err := measure(func() error {
		return cl.SaveBundleOpts(cold, sdm.BundleOptions{
			Backend: "obj", Endpoint: endpoint, PartSize: objstorePartSize,
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := objstore.Dial(endpoint)
	saveStats := svc.Stats()
	if saveStats.Parts == 0 {
		log.Fatal("objstore save used no multipart parts")
	}
	bl.add(benchRecord{
		Experiment: "objstore", Case: "save-multipart", Workload: "fun3d", Config: cfg,
		SimMetrics: map[string]float64{
			"remote-requests":   float64(saveStats.Requests),
			"remote-parts":      float64(saveStats.Parts),
			"remote-put-MB":     float64(saveStats.BytesIn) / 1e6,
			"remote-busy-s":     saveStats.RemoteTime.Seconds(),
			"remote-microcents": float64(saveStats.CostMicrocents),
		},
		WallNs: saveWall.Nanoseconds(), AllocsPerOp: saveAllocs,
	})

	// Phase 2: cold attach through the sdmd core, then warm promoted
	// reads. The warm pass running remote-silent is the experiment's
	// correctness gate, mirroring the tier tests.
	served, err := sdm.OpenBundle(cold, sdm.ClusterConfig{Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{CacheBytes: 256 << 20})
	if err := srv.Mount("tier", server.Source{Catalog: served.Catalog, FS: served.FS}); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	served.Catalog.SetAccessCost(0)
	runs, err := served.Catalog.Runs(nil)
	if err != nil || len(runs) == 0 {
		log.Fatalf("cold bundle has no runs (err %v)", err)
	}
	runID := runs[len(runs)-1].RunID
	recs, err := served.Catalog.WritesForRun(nil, runID)
	if err != nil || len(recs) == 0 {
		log.Fatalf("cold run has no writes (err %v)", err)
	}
	pass := func() float64 {
		c := sdmclient.New(base)
		at, err := c.Attach(sdmclient.AttachOptions{Run: runID})
		if err != nil {
			log.Fatalf("attach: %v", err)
		}
		var total int64
		for _, rec := range recs {
			buf, err := c.ReadDataset(at.Run.RunID, rec.Dataset, rec.Timestep)
			if err != nil {
				log.Fatalf("read %s@%d: %v", rec.Dataset, rec.Timestep, err)
			}
			total += int64(len(buf))
		}
		if err := c.Detach(); err != nil {
			log.Fatalf("detach: %v", err)
		}
		return float64(total) / 1e6
	}

	preStats := svc.Stats()
	var coldMB, warmMB float64
	coldWall, coldAllocs, _ := measure(func() error { coldMB = pass(); return nil })
	coldStats := svc.Stats()
	coldGets := coldStats.Gets - preStats.Gets
	if coldGets == 0 {
		log.Fatal("cold attach issued no remote GETs — the bundle was not served from the object tier")
	}
	warmWall, _, _ := measure(func() error { warmMB = pass(); return nil })
	warmStats := svc.Stats()
	if g := warmStats.Gets - coldStats.Gets; g != 0 {
		log.Fatalf("warm pass issued %d remote GETs, want 0 (block cache promotion)", g)
	}
	bl.add(benchRecord{
		Experiment: "objstore", Case: "attach-cold", Workload: "fun3d", Config: cfg,
		SimMetrics: map[string]float64{
			"host-cold-MB/s": coldMB / coldWall.Seconds(),
			"remote-gets":    float64(coldGets),
			"remote-get-MB":  float64(coldStats.BytesOut-preStats.BytesOut) / 1e6,
			"remote-busy-s":  (coldStats.RemoteTime - preStats.RemoteTime).Seconds(),
		},
		WallNs: coldWall.Nanoseconds(), AllocsPerOp: coldAllocs,
	})
	bl.add(benchRecord{
		Experiment: "objstore", Case: "warm-promoted", Workload: "fun3d", Config: cfg,
		SimMetrics: map[string]float64{
			"host-warm-MB/s": warmMB / warmWall.Seconds(),
			"remote-gets":    0,
		},
		WallNs: warmWall.Nanoseconds(),
	})

	// Phase 3: restore the cold bundle back to a hot directory tier.
	hot := filepath.Join(tmp, "hot")
	var mst sdm.MigrateStats
	migWall, migAllocs, err := measure(func() error {
		var err error
		mst, err = sdm.MigrateBundle(cold, hot, sdm.BundleOptions{Backend: "dir"})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	bl.add(benchRecord{
		Experiment: "objstore", Case: "migrate-restore", Workload: "fun3d", Config: cfg,
		SimMetrics: map[string]float64{
			"files":     float64(mst.Files),
			"copied-MB": float64(mst.BytesCopied) / 1e6,
		},
		WallNs: migWall.Nanoseconds(), AllocsPerOp: migAllocs,
	})

	w := table()
	fmt.Fprintf(w, "phase\twall (ms)\tremote reqs\tparts\tMB moved\tremote busy (s)\tmicrocents\n")
	fmt.Fprintf(w, "save-multipart\t%.1f\t%d\t%d\t%.1f\t%.3f\t%d\n",
		float64(saveWall.Nanoseconds())/1e6, saveStats.Requests, saveStats.Parts,
		float64(saveStats.BytesIn)/1e6, saveStats.RemoteTime.Seconds(), saveStats.CostMicrocents)
	fmt.Fprintf(w, "attach-cold\t%.1f\t%d\t-\t%.1f\t%.3f\t%d\n",
		float64(coldWall.Nanoseconds())/1e6, coldGets,
		float64(coldStats.BytesOut-preStats.BytesOut)/1e6,
		(coldStats.RemoteTime - preStats.RemoteTime).Seconds(),
		coldStats.CostMicrocents-preStats.CostMicrocents)
	fmt.Fprintf(w, "warm-promoted\t%.1f\t0\t-\t%.1f\t0.000\t0\n",
		float64(warmWall.Nanoseconds())/1e6, warmMB)
	fmt.Fprintf(w, "migrate-restore\t%.1f\t-\t-\t%.1f\t-\t-\n",
		float64(migWall.Nanoseconds())/1e6, float64(mst.BytesCopied)/1e6)
	w.Flush()
	fmt.Printf("expected: the save multiparts every checkpoint file, the warm pass is remote-silent\n"+
		"(block cache promotion), and no sim-* metric anywhere in this run moves — the remote's\n"+
		"%.3fs of busy time lives on its own timeline, not on any rank clock\n",
		warmStats.RemoteTime.Seconds())
}
