package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdm"
	"sdm/internal/catalog"
	"sdm/internal/server"
	"sdm/internal/wire"
	"sdm/sdmclient"
)

// The metadata experiment prices the concurrent metadb: N paced
// readers resolve (runid, dataset, timestep) placements while one
// paced writer keeps recording new execution rows, first against the
// embedded catalog (MVCC snapshot reads, per-reader sessions), then
// over the wire through sdmd's batched lookup endpoint. Readers are
// closed-loop clients with think time, so the reported rates measure
// concurrency headroom — whether 8 readers sustain ~8x one reader's
// rate despite the writer — rather than a single core's raw query
// throughput. Rates are host metrics (like the serve experiment),
// not simulated ones.
const (
	mdRuns     = 8   // preloaded runs readers probe
	mdDatasets = 4   // datasets per run
	mdSteps    = 320 // timesteps per dataset (=> ~10k rows preloaded)

	mdReaders     = 8
	mdPhase       = 400 * time.Millisecond
	mdWarmup      = 100 * time.Millisecond
	mdLocalThink  = 250 * time.Microsecond
	mdRemoteThink = time.Millisecond
	mdWriterPace  = time.Millisecond

	// Fatal floors for the r8-vs-r1 speedup: well under the expected
	// ~6-8x (local) so scheduler noise on small hosts doesn't flake,
	// but far above the ~1x a lock-serialized engine would show.
	mdLocalFloor  = 1.5
	mdRemoteFloor = 1.1
)

var mdDatasetNames = [mdDatasets]string{"pressure", "velocity", "mesh", "energy"}

// mdPreload registers the probed runs and bulk-records their execution
// rows (one batched RecordWrites per run), plus one extra run the
// writer appends to. Returns the writer's run id.
func mdPreload(cat *catalog.Catalog) int64 {
	when := time.Date(2001, 4, 23, 12, 0, 0, 0, time.UTC)
	for r := 0; r < mdRuns; r++ {
		runID, err := cat.RegisterRun(nil, "fun3d", 3, mdSteps, mdSteps, when)
		if err != nil {
			log.Fatal(err)
		}
		recs := make([]catalog.WriteRecord, 0, mdDatasets*mdSteps)
		for d := 0; d < mdDatasets; d++ {
			for ts := 0; ts < mdSteps; ts++ {
				recs = append(recs, catalog.WriteRecord{
					RunID: runID, Dataset: mdDatasetNames[d], Timestep: int64(ts),
					FileOffset: int64(ts) * 4096, FileName: fmt.Sprintf("app_r%d_g0.dat", runID),
				})
			}
		}
		if err := cat.RecordWrites(nil, recs); err != nil {
			log.Fatal(err)
		}
	}
	writerRun, err := cat.RegisterRun(nil, "fun3d-writer", 3, 0, 0, when)
	if err != nil {
		log.Fatal(err)
	}
	return writerRun
}

// mdPhaseRun drives one measured phase: `readers` closed-loop lookup
// clients (each built by mkLookup, probing a random preloaded key per
// op after `think`) against one paced writer appending 4-row batches.
// It returns the aggregate lookup rate, the writer's row rate, and
// allocations per lookup.
func mdPhaseRun(cat *catalog.Catalog, writerRun int64, writerTS *atomic.Int64,
	readers int, think, dur time.Duration,
	mkLookup func(i int) func(rng *rand.Rand) error) (lookupRate, writeRate float64, allocsPerOp uint64) {

	stop := make(chan struct{})
	var wroteRows atomic.Int64
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts := writerTS.Add(1)
			recs := make([]catalog.WriteRecord, mdDatasets)
			for d := range recs {
				recs[d] = catalog.WriteRecord{
					RunID: writerRun, Dataset: mdDatasetNames[d], Timestep: ts,
					FileOffset: ts * 4096, FileName: "writer.dat",
				}
			}
			if err := cat.RecordWrites(nil, recs); err != nil {
				log.Fatalf("metadata writer: %v", err)
			}
			wroteRows.Add(int64(len(recs)))
			time.Sleep(mdWriterPace)
		}
	}()

	var done atomic.Int64
	var readerWG sync.WaitGroup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func(i int) {
			defer readerWG.Done()
			lookup := mkLookup(i)
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(think)
				if err := lookup(rng); err != nil {
					log.Fatalf("metadata lookup: %v", err)
				}
				done.Add(1)
			}
		}(i)
	}
	time.Sleep(dur)
	close(stop)
	readerWG.Wait()
	writerWG.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	n := done.Load()
	if n == 0 {
		log.Fatalf("metadata phase with %d readers completed no lookups", readers)
	}
	return float64(n) / wall.Seconds(), float64(wroteRows.Load()) / wall.Seconds(),
		(after.Mallocs - before.Mallocs) / uint64(n)
}

// mdProbe picks a random preloaded key.
func mdProbe(rng *rand.Rand) (run int64, ds string, ts int64) {
	return int64(rng.Intn(mdRuns) + 1), mdDatasetNames[rng.Intn(mdDatasets)], int64(rng.Intn(mdSteps))
}

func runMetadata(bl *benchLog) {
	fmt.Printf("\n=== Metadata: concurrent catalog lookups, %d readers vs 1 paced writer ===\n", mdReaders)
	cl := newCluster(sdm.Origin2000Config(1))
	cat := cl.Catalog
	if err := cat.EnsureSchema(); err != nil {
		log.Fatal(err)
	}
	writerRun := mdPreload(cat)
	db := cat.DB()
	fmt.Printf("execution_table preloaded with %d rows (%d runs x %d datasets x %d steps), %d shards\n",
		mdRuns*mdDatasets*mdSteps, mdRuns, mdDatasets, mdSteps, db.NumShards())

	var writerTS atomic.Int64
	st0 := cat.DBStats()

	// Local variant: each reader is a metadb session issuing the
	// composite-index probe the read path uses (single-shard: the probe
	// binds runid, the execution table's shard column).
	localLookup := func(int) func(*rand.Rand) error {
		sess := db.Session()
		return func(rng *rand.Rand) error {
			run, ds, ts := mdProbe(rng)
			row, err := sess.QueryRow(
				`SELECT file_offset, file_name FROM execution_table
				 WHERE runid = ? AND dataset = ? AND timestep = ?`, run, ds, ts)
			if err == nil && row == nil {
				return fmt.Errorf("preloaded key (%d,%s,%d) missing", run, ds, ts)
			}
			return err
		}
	}
	mdPhaseRun(cat, writerRun, &writerTS, 1, mdLocalThink, mdWarmup, localLookup)
	local1, localWr1, _ := mdPhaseRun(cat, writerRun, &writerTS, 1, mdLocalThink, mdPhase, localLookup)
	localN, localWrN, localAllocs := mdPhaseRun(cat, writerRun, &writerTS, mdReaders, mdLocalThink, mdPhase, localLookup)
	localX := localN / local1

	// Remote variant: the same probes as wire lookups against an
	// in-process sdmd over a real TCP socket, one sdmclient per reader,
	// while the writer keeps appending to the mounted catalog.
	srv := server.New(server.Config{})
	if err := srv.Mount("bench", server.Source{Catalog: cat, FS: cl.FS}); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	remoteLookup := func(int) func(*rand.Rand) error {
		c := sdmclient.New(base)
		return func(rng *rand.Rand) error {
			run, ds, ts := mdProbe(rng)
			recs, err := c.Lookup(run, []wire.WriteKey{{Dataset: ds, Timestep: ts}})
			if err == nil && (len(recs) != 1 || recs[0] == nil) {
				return fmt.Errorf("preloaded key (%d,%s,%d) missing over the wire", run, ds, ts)
			}
			return err
		}
	}
	mdPhaseRun(cat, writerRun, &writerTS, 1, mdRemoteThink, mdWarmup, remoteLookup)
	remote1, _, _ := mdPhaseRun(cat, writerRun, &writerTS, 1, mdRemoteThink, mdPhase, remoteLookup)
	remoteN, remoteWrN, remoteAllocs := mdPhaseRun(cat, writerRun, &writerTS, mdReaders, mdRemoteThink, mdPhase, remoteLookup)
	remoteX := remoteN / remote1

	st := cat.DBStats()
	w := table()
	fmt.Fprintf(w, "variant\treaders\tlookups/sec\tspeedup\twriter rows/sec\n")
	fmt.Fprintf(w, "local\t1\t%.0f\t1.0x\t%.0f\n", local1, localWr1)
	fmt.Fprintf(w, "local\t%d\t%.0f\t%.1fx\t%.0f\n", mdReaders, localN, localX, localWrN)
	fmt.Fprintf(w, "remote\t1\t%.0f\t1.0x\t-\n", remote1)
	fmt.Fprintf(w, "remote\t%d\t%.0f\t%.1fx\t%.0f\n", mdReaders, remoteN, remoteX, remoteWrN)
	w.Flush()
	fmt.Printf("engine: %d snapshots, %d commits, %d shard-lock waits; plans %d single-shard / %d scatter\n",
		st.Snapshots-st0.Snapshots, st.Commits-st0.Commits, st.ShardWaits-st0.ShardWaits,
		st.PlanSingleShard-st0.PlanSingleShard, st.PlanScatter-st0.PlanScatter)
	fmt.Printf("expected: readers run against MVCC snapshots and probe single shards, so %d readers\n"+
		"scale near-linearly over one reader with the writer running throughout\n", mdReaders)

	if localX < mdLocalFloor {
		log.Fatalf("metadata: local %d-reader speedup %.2fx is below the %.1fx floor — readers are serializing",
			mdReaders, localX, mdLocalFloor)
	}
	if remoteX < mdRemoteFloor {
		log.Fatalf("metadata: remote %d-reader speedup %.2fx is below the %.1fx floor",
			mdReaders, remoteX, mdRemoteFloor)
	}

	cfg := map[string]any{"runs": mdRuns, "datasets": mdDatasets, "steps": mdSteps,
		"readers": mdReaders, "shards": db.NumShards(),
		"rows_preloaded": mdRuns * mdDatasets * mdSteps}
	bl.add(benchRecord{
		Experiment: "metadata", Case: "local", Workload: "catalog", Config: cfg,
		SimMetrics: map[string]float64{
			"host-r1-lookups/sec": local1,
			"host-r8-lookups/sec": localN,
			"r8-vs-r1-x":          localX,
			"writer-rows/sec":     localWrN,
		},
		WallNs: mdPhase.Nanoseconds(), AllocsPerOp: localAllocs,
	})
	bl.add(benchRecord{
		Experiment: "metadata", Case: "remote", Workload: "catalog", Config: cfg,
		SimMetrics: map[string]float64{
			"host-r1-lookups/sec": remote1,
			"host-r8-lookups/sec": remoteN,
			"r8-vs-r1-x":          remoteX,
		},
		WallNs: mdPhase.Nanoseconds(), AllocsPerOp: remoteAllocs,
	})
}
