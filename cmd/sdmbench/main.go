// Command sdmbench regenerates the paper's evaluation: one table per
// figure of "A Scientific Data Management System for Irregular
// Applications" (IPDPS 2001), plus the ablations called out in
// DESIGN.md. Absolute magnitudes depend on the simulated-hardware
// profile (sdm.Origin2000Config); the claims are about shape — who
// wins, by roughly what factor, and where the crossovers fall.
//
// With -json, every measured case is also appended to a
// machine-readable results file (workload, configuration, simulated
// metrics, host wall time and allocations), so successive commits
// leave a comparable BENCH_*.json perf trajectory.
//
// Usage:
//
//	sdmbench [-experiment all|fig5|fig6|fig7|pipeline|ablations|bundle|trace|serve|metadata|objstore] [-nx 32]
//	         [-rtnx 40] [-procs 64] [-steps 2] [-rtsteps 5] [-pipesteps 8]
//	         [-json BENCH.json] [-bundle DIR] [-trace out.json]
//
// With -bundle, the last experiment's cluster (files plus metadata
// catalog) is saved as a run bundle under DIR, inspectable afterwards
// with sdmcat/sdmls and reopenable with sdm.OpenBundle. With -trace,
// every experiment cluster records virtual-time spans and the last
// one's trace is written as Chrome trace-event JSON (Perfetto; analyze
// with sdmtrace). The trace experiment prices tracing itself: the same
// pipelined workload with spans off and on, pinning the simulated
// metrics bit-identical either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"sdm"
	"sdm/internal/server"
	"sdm/internal/workloads"
	"sdm/sdmclient"
)

// benchRecord is one measured case of one experiment.
type benchRecord struct {
	Experiment  string             `json:"experiment"`
	Case        string             `json:"case"`
	Workload    string             `json:"workload"`
	Config      map[string]any     `json:"config"`
	SimMetrics  map[string]float64 `json:"sim_metrics"`
	WallNs      int64              `json:"wall_ns_per_op"`
	AllocsPerOp uint64             `json:"allocs_per_op"`
}

// benchLog accumulates records for -json output. A nil *benchLog
// swallows records, so the table-printing paths need no branching.
type benchLog struct {
	Schema    int           `json:"schema"`
	CreatedAt string        `json:"created_at"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Records   []benchRecord `json:"records"`
}

// lastCluster is the most recent experiment's cluster, kept so -bundle
// can persist a bench run's artifacts for later inspection.
var lastCluster *sdm.Cluster

// tracePath, when set by -trace, enables span tracing on every
// experiment cluster; the last cluster's trace is written there as
// Chrome trace-event JSON at exit (load in Perfetto, or analyze with
// sdmtrace). lastTracer is that cluster's tracer.
var (
	tracePath  string
	lastTracer *sdm.Tracer
)

// newCluster builds an experiment cluster, remembers it for -bundle,
// and — when -trace is active — installs a fresh tracer and metrics
// registry so the written trace covers exactly the last experiment.
func newCluster(cfg sdm.ClusterConfig) *sdm.Cluster {
	cl := sdm.NewCluster(cfg)
	lastCluster = cl
	if tracePath != "" {
		lastTracer = sdm.NewTracer()
		cl.SetTracer(lastTracer)
		cl.SetMetrics(sdm.NewRegistry())
	}
	return cl
}

// measure runs fn, returning its wall time and allocation count.
func measure(fn func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	err := fn()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs, err
}

func (bl *benchLog) add(rec benchRecord) {
	if bl == nil {
		return
	}
	bl.Records = append(bl.Records, rec)
}

// write persists the log. If path already holds a benchLog, its
// records are kept and the new ones appended, so successive runs
// against one file accumulate a trajectory instead of overwriting it.
func (bl *benchLog) write(path string) error {
	if prev, err := os.ReadFile(path); err == nil {
		var old benchLog
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("existing %s is not a results file: %w", path, err)
		}
		bl.Records = append(old.Records, bl.Records...)
	}
	out, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

func main() {
	experiment := flag.String("experiment", "all", "fig5, fig6, fig7, pipeline, ablations, bundle, trace, serve, metadata, objstore, or all")
	nx := flag.Int("nx", 32, "FUN3D mesh cells per dimension (paper: ~18M edges; 32 => ~245k)")
	rtnx := flag.Int("rtnx", 40, "RT mesh cells per dimension")
	procs := flag.Int("procs", 64, "process count for fig5/fig6")
	steps := flag.Int("steps", 2, "FUN3D checkpoint steps (paper: 2)")
	rtsteps := flag.Int("rtsteps", 5, "RT checkpoints (paper: 5)")
	pipesteps := flag.Int("pipesteps", 8, "checkpoints streamed by the pipeline experiment")
	jsonPath := flag.String("json", "", "append machine-readable results to this JSON file")
	bundlePath := flag.String("bundle", "", "save the last experiment's cluster as a run bundle here")
	trace := flag.String("trace", "", "record the last experiment's virtual-time spans as Chrome trace JSON here")
	flag.Parse()
	tracePath = *trace

	var bl *benchLog
	if *jsonPath != "" {
		bl = &benchLog{
			Schema:    1,
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
		}
	}

	switch *experiment {
	case "fig5":
		runFig5(*nx, *procs, bl)
	case "fig6":
		runFig6(*nx, *procs, *steps, bl)
	case "fig7":
		runFig7(*rtnx, *rtsteps, bl)
	case "pipeline":
		runPipeline(*nx, *procs, *pipesteps, bl)
	case "ablations":
		runAblations(*nx, *procs, bl)
	case "bundle":
		runBundleBench(*nx, *procs, *steps, bl)
	case "trace":
		runTraceOverhead(*nx, *procs, *pipesteps, bl)
	case "serve":
		runServe(*nx, *procs, *steps, bl)
	case "metadata":
		runMetadata(bl)
	case "objstore":
		runObjstore(*nx, *procs, *steps, bl)
	case "all":
		runFig5(*nx, *procs, bl)
		runFig6(*nx, *procs, *steps, bl)
		runFig7(*rtnx, *rtsteps, bl)
		runPipeline(*nx, *procs, *pipesteps, bl)
		runAblations(*nx, *procs, bl)
		runBundleBench(*nx, *procs, *steps, bl)
		runTraceOverhead(*nx, *procs, *pipesteps, bl)
		runServe(*nx, *procs, *steps, bl)
		runMetadata(bl)
		runObjstore(*nx, *procs, *steps, bl)
	default:
		log.Fatalf("unknown experiment %q", *experiment)
	}

	if tracePath != "" {
		if lastTracer == nil {
			log.Fatal("-trace: no experiment cluster was traced")
		}
		if err := lastTracer.WriteChromeFile(tracePath); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Printf("wrote %d spans to %s (load in Perfetto, or run sdmtrace over it)\n",
			lastTracer.SpanCount(), tracePath)
	}

	if bl != nil {
		fresh := bl.Records
		if err := bl.write(*jsonPath); err != nil {
			log.Fatalf("writing %s: %v", *jsonPath, err)
		}
		fmt.Printf("\nwrote %d records to %s (%d total)\n", len(fresh), *jsonPath, len(bl.Records))
		printDelta(*jsonPath, fresh)
	}
	if *bundlePath != "" {
		if lastCluster == nil {
			log.Fatal("-bundle: no experiment cluster to save")
		}
		if err := lastCluster.SaveBundle(*bundlePath); err != nil {
			log.Fatalf("saving bundle: %v", err)
		}
		fmt.Printf("saved run bundle to %s\n", *bundlePath)
	}
}

// printDelta compares the freshly measured simulated metrics against
// the newest other BENCH_*.json beside path and prints a one-line
// summary, so a perf regression is visible in a PR's text output
// rather than only as raw JSON churn. Bandwidth metrics (MB/s) count
// as improved when they rise, time metrics (…-s, …-s/op) when they
// fall; other metrics (sizes) are skipped. Metrics with no counterpart
// in the previous file are reported as newly added, not silently
// dropped.
func printDelta(path string, fresh []benchRecord) {
	prevPath := latestOtherBench(path)
	if prevPath == "" {
		return
	}
	raw, err := os.ReadFile(prevPath)
	if err != nil {
		return
	}
	var old benchLog
	if err := json.Unmarshal(raw, &old); err != nil {
		return
	}
	prev := make(map[string]float64)
	for _, r := range old.Records { // later records win, matching append order
		for m, v := range r.SimMetrics {
			prev[r.Experiment+"/"+r.Case+"/"+m] = v
		}
	}
	var compared, improved, regressed int
	var added []string
	worst, worstKey := 0.0, ""
	headline := ""
	for _, r := range fresh {
		for m, v := range r.SimMetrics {
			key := r.Experiment + "/" + r.Case + "/" + m
			pv, ok := prev[key]
			if !ok {
				added = append(added, key)
				continue
			}
			if pv == 0 {
				continue
			}
			higherBetter := strings.Contains(m, "MB/s")
			if !higherBetter && !strings.Contains(m, "-s") {
				continue // sizes and counts are not better/worse
			}
			compared++
			gain := v/pv - 1
			if !higherBetter {
				gain = pv/v - 1
			}
			switch {
			case gain > 0.01:
				improved++
			case gain < -0.01:
				regressed++
				if gain < worst {
					worst, worstKey = gain, key
				}
			}
			if r.Experiment == "fig6" && r.Case == "level3" && m == "sim-write-MB/s" {
				headline = fmt.Sprintf("fig6/level3 write %.1f→%.1f MB/s (%+.1f%%); ", pv, v, (v/pv-1)*100)
			}
		}
	}
	if compared == 0 && len(added) == 0 {
		return
	}
	line := fmt.Sprintf("delta vs %s: %s%d metrics compared, %d improved, %d regressed >1%%",
		filepath.Base(prevPath), headline, compared, improved, regressed)
	if worstKey != "" {
		line += fmt.Sprintf(" (worst %s %.1f%%)", worstKey, worst*100)
	}
	if len(added) > 0 {
		sort.Strings(added)
		show := added
		if len(show) > 3 {
			show = show[:3]
		}
		line += fmt.Sprintf("; %d newly added (%s", len(added), strings.Join(show, ", "))
		if len(added) > len(show) {
			line += ", …"
		}
		line += ")"
	}
	fmt.Println(line)
}

// latestOtherBench returns the lexically newest BENCH_*.json in path's
// directory other than path itself ("" if none). BENCH_10 sorts after
// BENCH_9 via a length-then-lexical order.
func latestOtherBench(path string) string {
	dir := filepath.Dir(path)
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	self, _ := filepath.Abs(path)
	var others []string
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs != self {
			others = append(others, m)
		}
	}
	if len(others) == 0 {
		return ""
	}
	sort.Slice(others, func(i, j int) bool {
		if len(others[i]) != len(others[j]) {
			return len(others[i]) < len(others[j])
		}
		return others[i] < others[j]
	})
	return others[len(others)-1]
}

func newFUN3D(nx int) *workloads.FUN3D {
	f, err := workloads.NewFUN3D(workloads.FUN3DConfig{NX: nx, NY: nx, NZ: nx})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
}

func runFig5(nx, procs int, bl *benchLog) {
	fmt.Printf("\n=== Figure 5: execution time for partitioning indices and data in FUN3D ===\n")
	f := newFUN3D(nx)
	fmt.Printf("mesh: %d nodes, %d edges; %d processes\n",
		f.Mesh.NumNodes(), f.Mesh.NumEdges(), procs)
	cfg := map[string]any{"nx": nx, "procs": procs,
		"nodes": f.Mesh.NumNodes(), "edges": f.Mesh.NumEdges()}

	cl := newCluster(sdm.Origin2000Config(procs))
	if err := f.Stage(cl); err != nil {
		log.Fatal(err)
	}
	run := func(name string, mode workloads.PartitionMode, history bool) *workloads.PartitionStats {
		var st *workloads.PartitionStats
		wall, allocs, err := measure(func() error {
			var err error
			st, err = f.ImportAndPartition(cl, mode, history)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		bl.add(benchRecord{
			Experiment: "fig5", Case: name, Workload: "fun3d", Config: cfg,
			SimMetrics: map[string]float64{
				"sim-import-s/op": st.ImportSec,
				"sim-distri-s/op": st.DistributeSec,
				"sim-total-s/op":  st.TotalSec,
			},
			WallNs: wall.Nanoseconds(), AllocsPerOp: allocs,
		})
		return st
	}
	orig := run("original", workloads.ModeOriginal, false)
	noHist := run("sdm-nohistory", workloads.ModeSDM, true)
	withHist := run("sdm-history", workloads.ModeSDM, true)
	if !withHist.FromHistory {
		log.Fatal("history was not used on the second SDM run")
	}

	w := table()
	fmt.Fprintf(w, "mode\timport (s)\tindex distri. (s)\ttotal (s)\n")
	fmt.Fprintf(w, "Original\t%.3f\t%.3f\t%.3f\n", orig.ImportSec, orig.DistributeSec, orig.TotalSec)
	fmt.Fprintf(w, "SDM (without history)\t%.3f\t%.3f\t%.3f\n", noHist.ImportSec, noHist.DistributeSec, noHist.TotalSec)
	fmt.Fprintf(w, "SDM (with history)\t%.3f\t%.3f\t%.3f\n", withHist.ImportSec, withHist.DistributeSec, withHist.TotalSec)
	w.Flush()
	fmt.Printf("paper shape: Original slowest; history cuts both bars (Fig. 5 shows ~3x total)\n")
}

func fig6Case(f *workloads.FUN3D, level sdm.FileOrganization, procs, steps int,
	hints sdm.Hints, experiment, name string, bl *benchLog) *workloads.Fig6Stats {
	cl := newCluster(sdm.Origin2000Config(procs))
	if err := f.Stage(cl); err != nil {
		log.Fatal(err)
	}
	var st *workloads.Fig6Stats
	wall, allocs, err := measure(func() error {
		var err error
		st, err = f.WriteReadBandwidthHints(cl, level, steps, hints)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	bl.add(benchRecord{
		Experiment: experiment, Case: name, Workload: "fun3d",
		Config: map[string]any{"procs": procs, "steps": steps, "level": level.String(),
			"disable_collective": hints.DisableCollective},
		SimMetrics: map[string]float64{
			"sim-write-MB/s": st.WriteMBps,
			"sim-read-MB/s":  st.ReadMBps,
		},
		WallNs: wall.Nanoseconds(), AllocsPerOp: allocs,
	})
	return st
}

func runFig6(nx, procs, steps int, bl *benchLog) {
	fmt.Printf("\n=== Figure 6: I/O bandwidth for writing/reading data in FUN3D ===\n")
	f := newFUN3D(nx)
	fmt.Printf("5 datasets (4 node-sized + 1 five-times-larger), %d steps, %d processes\n",
		steps, procs)
	w := table()
	fmt.Fprintf(w, "organization\twrite (MB/s)\tread (MB/s)\tfiles\topens\tviews\n")
	for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level2, sdm.Level3} {
		st := fig6Case(f, level, procs, steps, sdm.Hints{}, "fig6", level.String(), bl)
		fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%d\t%d\t%d\n",
			level, st.WriteMBps, st.ReadMBps, st.Files, st.FileOpens, st.FileViews)
	}
	w.Flush()
	fmt.Printf("paper shape: level3 >= level2, open/view costs grow as the level drops; at this\n" +
		"sub-paper data size level1's file-per-step layout can win back raw bandwidth through\n" +
		"starting-server rotation while paying the most metadata (see the open-cost ablation)\n")
}

func runFig7(rtnx, rtsteps int, bl *benchLog) {
	fmt.Printf("\n=== Figure 7: I/O bandwidth for RT ===\n")
	r, err := workloads.NewRT(workloads.RTConfig{NX: rtnx, NY: rtnx, NZ: rtnx, Steps: rtsteps})
	if err != nil {
		log.Fatal(err)
	}
	m := r.RT.Mesh()
	fmt.Printf("mesh: %d nodes, %d boundary triangles; %d checkpoints\n",
		m.NumNodes(), r.RT.NumTriangles(), rtsteps)
	w := table()
	fmt.Fprintf(w, "mode\tprocs\ttotal (MB)\twrite (s)\tbandwidth (MB/s)\n")
	for _, mode := range []workloads.RTMode{workloads.RTOriginal, workloads.RTLevel1, workloads.RTLevel23} {
		for _, procs := range []int{32, 64} {
			cl := newCluster(sdm.Origin2000Config(procs))
			var st *workloads.RTStats
			wall, allocs, err := measure(func() error {
				var err error
				st, err = r.WriteBandwidth(cl, mode)
				return err
			})
			if err != nil {
				log.Fatal(err)
			}
			bl.add(benchRecord{
				Experiment: "fig7", Case: fmt.Sprintf("%v-%d", mode, procs), Workload: "rt",
				Config: map[string]any{"rtnx": rtnx, "rtsteps": rtsteps, "procs": procs,
					"mode": fmt.Sprintf("%v", mode)},
				SimMetrics: map[string]float64{
					"sim-write-MB/s": st.MBps,
					"sim-write-s":    st.WriteSec,
					"total-MB":       st.TotalMB,
				},
				WallNs: wall.Nanoseconds(), AllocsPerOp: allocs,
			})
			fmt.Fprintf(w, "%v\t%d\t%.1f\t%.3f\t%.1f\n",
				mode, procs, st.TotalMB, st.WriteSec, st.MBps)
		}
	}
	w.Flush()
	fmt.Printf("paper shape: SDM >> original; level1 ~ level2/3; 64 procs slower than 32\n")
}

func runPipeline(nx, procs, steps int, bl *benchLog) {
	fmt.Printf("\n=== Pipeline: N-deep step pipelining on a file-per-timestep layout ===\n")
	f := newFUN3D(nx)
	fmt.Printf("level1 (file per dataset per timestep), 5 datasets, %d checkpoints, %d processes\n",
		steps, procs)
	w := table()
	fmt.Fprintf(w, "depth\twrite (MB/s)\tfiles\n")
	var base float64
	for _, depth := range []int{1, 2, 4} {
		cl := newCluster(sdm.Origin2000Config(procs))
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		var st *workloads.Fig6Stats
		wall, allocs, err := measure(func() error {
			var err error
			st, err = f.PipelineWriteBandwidth(cl, steps, depth)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		bl.add(benchRecord{
			Experiment: "pipeline", Case: fmt.Sprintf("depth-%d", depth), Workload: "fun3d",
			Config: map[string]any{"procs": procs, "steps": steps, "depth": depth,
				"level": st.Level.String()},
			SimMetrics: map[string]float64{
				"sim-write-MB/s": st.WriteMBps,
			},
			WallNs: wall.Nanoseconds(), AllocsPerOp: allocs,
		})
		if depth == 1 {
			base = st.WriteMBps
		}
		fmt.Fprintf(w, "%d\t%.1f\t%d\n", depth, st.WriteMBps, st.Files)
	}
	w.Flush()
	fmt.Printf("expected: disjoint per-step files keep N flushes in flight, so depth >= 2 beats\n"+
		"depth 1 (%.1f MB/s) well beyond the 15%% bar while depth 1 matches the classic schedule\n", base)
}

func runAblations(nx, procs int, bl *benchLog) {
	fmt.Printf("\n=== Ablations (design choices from DESIGN.md) ===\n")
	f := newFUN3D(nx)

	// (a) Two-phase collective I/O versus independent noncontiguous I/O.
	fmt.Printf("\n-- collective (two-phase) vs independent irregular writes --\n")
	w := table()
	fmt.Fprintf(w, "I/O path\twrite (MB/s)\tread (MB/s)\tfs write reqs\n")
	for _, disable := range []bool{false, true} {
		name := "two-phase collective"
		if disable {
			name = "independent"
		}
		st := fig6Case(f, sdm.Level3, procs, 1, sdm.Hints{DisableCollective: disable},
			"ablation-two-phase", name, bl)
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\n", name, st.WriteMBps, st.ReadMBps, st.WriteReqs)
	}
	w.Flush()

	// (b) Metadata database cost: SDM with and without the catalog.
	fmt.Printf("\n-- metadata database overhead on the history path --\n")
	w = table()
	fmt.Fprintf(w, "configuration\timport (s)\tindex distri. (s)\n")
	{
		cl := newCluster(sdm.Origin2000Config(procs))
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		st1, err := f.ImportAndPartition(cl, workloads.ModeSDM, true)
		if err != nil {
			log.Fatal(err)
		}
		st2, err := f.ImportAndPartition(cl, workloads.ModeSDM, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "with DB, ring\t%.3f\t%.3f\n", st1.ImportSec, st1.DistributeSec)
		fmt.Fprintf(w, "with DB, history\t%.3f\t%.3f\n", st2.ImportSec, st2.DistributeSec)
	}
	w.Flush()

	// (c) Striping width sweep: where parallel I/O saturates.
	fmt.Printf("\n-- I/O server count sweep (level 3 write bandwidth) --\n")
	w = table()
	fmt.Fprintf(w, "servers\twrite (MB/s)\n")
	for _, servers := range []int{1, 2, 5, 10, 20} {
		cfg := sdm.Origin2000Config(procs)
		cfg.Storage.NumServers = servers
		cl := newCluster(cfg)
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		var st *workloads.Fig6Stats
		wall, allocs, err := measure(func() error {
			var err error
			st, err = f.WriteReadBandwidth(cl, sdm.Level3, 1)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		bl.add(benchRecord{
			Experiment: "ablation-stripe-width", Case: fmt.Sprintf("servers-%d", servers),
			Workload: "fun3d",
			Config:   map[string]any{"procs": procs, "servers": servers},
			SimMetrics: map[string]float64{
				"sim-write-MB/s": st.WriteMBps,
			},
			WallNs: wall.Nanoseconds(), AllocsPerOp: allocs,
		})
		fmt.Fprintf(w, "%d\t%.1f\n", servers, st.WriteMBps)
	}
	w.Flush()

	// (d) High-open-cost file system: when level 3 matters (the paper's
	// motivating claim for level 3).
	fmt.Printf("\n-- level sensitivity to file-open cost (100x XFS) --\n")
	w = table()
	fmt.Fprintf(w, "organization\twrite (MB/s, cheap opens)\twrite (MB/s, expensive opens)\n")
	for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level2, sdm.Level3} {
		cheapCfg := sdm.Origin2000Config(procs)
		cl := sdm.NewCluster(cheapCfg)
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		cheap, err := f.WriteReadBandwidth(cl, level, 2)
		if err != nil {
			log.Fatal(err)
		}
		expCfg := sdm.Origin2000Config(procs)
		expCfg.Storage.OpenCost *= 100
		expCfg.Storage.ViewCost *= 100
		cl2 := newCluster(expCfg)
		if err := f.Stage(cl2); err != nil {
			log.Fatal(err)
		}
		expensive, err := f.WriteReadBandwidth(cl2, level, 2)
		if err != nil {
			log.Fatal(err)
		}
		bl.add(benchRecord{
			Experiment: "ablation-open-cost", Case: level.String(), Workload: "fun3d",
			Config: map[string]any{"procs": procs, "open_cost_multiplier": 100},
			SimMetrics: map[string]float64{
				"sim-write-MB/s-cheap":     cheap.WriteMBps,
				"sim-write-MB/s-expensive": expensive.WriteMBps,
			},
		})
		fmt.Fprintf(w, "%v\t%.1f\t%.1f\n", level, cheap.WriteMBps, expensive.WriteMBps)
	}
	w.Flush()
	fmt.Printf("expected: with expensive opens, level3's advantage over level1 widens sharply\n")
}

// runBundleBench prices crash consistency: the same fig6-populated
// cluster is saved as a run bundle with the write-ahead log on (the
// default, crash-consistent path) and off (the raw pre-WAL path), for
// both storage backends. The save is host work, not simulated work, so
// the cost is reported as wall time; the overhead column is the WAL's
// durability tax.
func runBundleBench(nx, procs, steps int, bl *benchLog) {
	fmt.Printf("\n=== Bundle: crash-consistent save cost (WAL on vs off) ===\n")
	f := newFUN3D(nx)
	cl := newCluster(sdm.Origin2000Config(procs))
	if err := f.Stage(cl); err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteReadBandwidth(cl, sdm.Level3, steps); err != nil {
		log.Fatal(err)
	}
	var totalMB float64
	for _, name := range cl.ListFiles() {
		data, err := cl.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		totalMB += float64(len(data)) / 1e6
	}
	fmt.Printf("cluster holds %d files, %.1f MB; %d save reps each, best kept\n",
		len(cl.ListFiles()), totalMB, bundleBenchReps)

	tmp, err := os.MkdirTemp("", "sdmbench-bundle-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	w := table()
	fmt.Fprintf(w, "backend\tWAL\tsave (ms)\tbundle (MB)\toverhead\n")
	for _, backend := range []string{"dir", "cas"} {
		times := map[bool]time.Duration{}
		for _, wal := range []bool{false, true} {
			var best time.Duration
			var allocs uint64
			var sizeMB float64
			for rep := 0; rep < bundleBenchReps; rep++ {
				dir := filepath.Join(tmp, fmt.Sprintf("%s-wal%v-%d", backend, wal, rep))
				wall, a, err := measure(func() error {
					return cl.SaveBundleOpts(dir, sdm.BundleOptions{Backend: backend, DisableWAL: !wal})
				})
				if err != nil {
					log.Fatal(err)
				}
				if rep == 0 || wall < best {
					best, allocs = wall, a
				}
				sizeMB = dirSizeMB(dir)
			}
			times[wal] = best
			caseName := backend + "-nowal"
			metrics := map[string]float64{"bundle-MB": sizeMB}
			if wal {
				caseName = backend + "-wal"
				metrics["wal-overhead-pct"] = (float64(best)/float64(times[false]) - 1) * 100
			}
			bl.add(benchRecord{
				Experiment: "bundle", Case: caseName, Workload: "fun3d",
				Config: map[string]any{"nx": nx, "procs": procs, "steps": steps,
					"backend": backend, "wal": wal},
				SimMetrics: metrics,
				WallNs:     best.Nanoseconds(), AllocsPerOp: allocs,
			})
			overhead := "-"
			if wal {
				overhead = fmt.Sprintf("%+.1f%%", metrics["wal-overhead-pct"])
			}
			fmt.Fprintf(w, "%s\t%v\t%.1f\t%.1f\t%s\n",
				backend, wal, float64(best.Nanoseconds())/1e6, sizeMB, overhead)
		}
	}
	w.Flush()
	fmt.Printf("expected: the WAL costs extra fsyncs and a staging pass, not extra data copies —\n" +
		"overhead tracks the host's sync latency (noisy on shared machines), not data volume;\n" +
		"bundle sizes must match with and without the WAL\n")
}

// bundleBenchReps is how many times each bundle save is repeated (the
// fastest rep is recorded, de-noising host timing).
const bundleBenchReps = 3

// runTraceOverhead prices observability itself: the same depth-4
// pipelined checkpoint workload runs with tracing off and on. The
// simulated metrics must be bit-identical either way — the tracer only
// observes clock values, never advances them — so tracing's entire
// cost is host wall time and allocations, recorded as an overhead
// percentage in the results file.
func runTraceOverhead(nx, procs, steps int, bl *benchLog) {
	fmt.Printf("\n=== Trace: observability overhead (spans off vs on) ===\n")
	f := newFUN3D(nx)
	const reps, depth = 3, 4
	fmt.Printf("level1 pipelined writes, depth %d, %d checkpoints, %d processes; %d reps each, best kept\n",
		depth, steps, procs, reps)

	run := func(traced bool) (time.Duration, uint64, float64, int) {
		var best time.Duration
		var allocs uint64
		var mbps float64
		spans := 0
		for rep := 0; rep < reps; rep++ {
			cl := sdm.NewCluster(sdm.Origin2000Config(procs))
			lastCluster = cl
			var tr *sdm.Tracer
			if traced {
				tr = sdm.NewTracer()
				cl.SetTracer(tr)
				cl.SetMetrics(sdm.NewRegistry())
			}
			if err := f.Stage(cl); err != nil {
				log.Fatal(err)
			}
			var st *workloads.Fig6Stats
			wall, a, err := measure(func() error {
				var err error
				st, err = f.PipelineWriteBandwidth(cl, steps, depth)
				return err
			})
			if err != nil {
				log.Fatal(err)
			}
			if rep == 0 || wall < best {
				best, allocs = wall, a
			}
			if rep == 0 {
				mbps = st.WriteMBps
			} else if st.WriteMBps != mbps {
				log.Fatalf("trace overhead: nondeterministic sim metric across reps (%v vs %v)", st.WriteMBps, mbps)
			}
			spans = tr.SpanCount() // nil-safe: 0 when untraced
		}
		return best, allocs, mbps, spans
	}

	offBest, offAllocs, offMBps, _ := run(false)
	onBest, onAllocs, onMBps, spans := run(true)
	if onMBps != offMBps {
		log.Fatalf("tracing perturbed the simulation: %v MB/s traced vs %v untraced", onMBps, offMBps)
	}
	overhead := (float64(onBest)/float64(offBest) - 1) * 100

	w := table()
	fmt.Fprintf(w, "tracing\twrite (MB/s)\twall (ms)\tallocs\tspans\n")
	fmt.Fprintf(w, "off\t%.1f\t%.1f\t%d\t-\n", offMBps, float64(offBest.Nanoseconds())/1e6, offAllocs)
	fmt.Fprintf(w, "on\t%.1f\t%.1f\t%d\t%d\n", onMBps, float64(onBest.Nanoseconds())/1e6, onAllocs, spans)
	w.Flush()
	fmt.Printf("tracing overhead %+.1f%% wall time; simulated metrics bit-identical (%.3f MB/s both ways)\n",
		overhead, onMBps)

	cfg := map[string]any{"nx": nx, "procs": procs, "steps": steps, "depth": depth}
	bl.add(benchRecord{
		Experiment: "trace-overhead", Case: "off", Workload: "fun3d", Config: cfg,
		SimMetrics: map[string]float64{"sim-write-MB/s": offMBps},
		WallNs:     offBest.Nanoseconds(), AllocsPerOp: offAllocs,
	})
	bl.add(benchRecord{
		Experiment: "trace-overhead", Case: "on", Workload: "fun3d", Config: cfg,
		SimMetrics: map[string]float64{
			"sim-write-MB/s":     onMBps,
			"trace-overhead-pct": overhead,
			"trace-spans":        float64(spans),
		},
		WallNs: onBest.Nanoseconds(), AllocsPerOp: onAllocs,
	})
}

// dirSizeMB totals the on-disk bytes under dir.
func dirSizeMB(dir string) float64 {
	var total int64
	_ = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return float64(total) / 1e6
}

// serveClients is the concurrent client count of the serve experiment,
// matching the acceptance bar of the network service (>= 8 concurrent
// readers against one daemon).
const serveClients = 8

// runServe prices the network path: a FUN3D checkpoint run is saved as
// a bundle, reopened, and served by an in-process sdmd core on a real
// TCP socket; serveClients concurrent sdmclient readers then pull
// every recorded slab twice. The cold pass pays backend reads (with
// singleflight collapsing the 8-way pileup per block); the warm pass
// runs out of the block cache, and its hit ratio is the experiment's
// correctness gate. Throughputs are host MB/s — real wall time over a
// real socket — unlike the sim-* metrics elsewhere in this file.
func runServe(nx, procs, steps int, bl *benchLog) {
	fmt.Printf("\n=== Serve: sdmd network reads, %d concurrent clients, cold vs warm cache ===\n", serveClients)
	f := newFUN3D(nx)
	cl := newCluster(sdm.Origin2000Config(procs))
	if err := f.Stage(cl); err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteReadBandwidth(cl, sdm.Level3, steps); err != nil {
		log.Fatal(err)
	}
	tmp, err := os.MkdirTemp("", "sdmbench-serve-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "bundle")
	if err := cl.SaveBundle(dir); err != nil {
		log.Fatal(err)
	}

	served, err := sdm.OpenBundle(dir, sdm.ClusterConfig{Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{CacheBytes: 256 << 20, Metrics: sdm.NewRegistry()})
	if err := srv.Mount("bench", server.Source{Catalog: served.Catalog, FS: served.FS}); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Work list: every (dataset, timestep) slab the run recorded.
	served.Catalog.SetAccessCost(0)
	runs, err := served.Catalog.Runs(nil)
	if err != nil || len(runs) == 0 {
		log.Fatalf("served bundle has no runs (err %v)", err)
	}
	runID := runs[len(runs)-1].RunID
	recs, err := served.Catalog.WritesForRun(nil, runID)
	if err != nil || len(recs) == 0 {
		log.Fatalf("served run has no writes (err %v)", err)
	}

	// pass has every client read every slab once, returning aggregate MB.
	pass := func() float64 {
		var wg sync.WaitGroup
		var totalBytes int64
		var mu sync.Mutex
		for i := 0; i < serveClients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := sdmclient.New(base)
				at, err := c.Attach(sdmclient.AttachOptions{Run: runID})
				if err != nil {
					log.Fatalf("attach: %v", err)
				}
				var mine int64
				for _, rec := range recs {
					buf, err := c.ReadDataset(at.Run.RunID, rec.Dataset, rec.Timestep)
					if err != nil {
						log.Fatalf("read %s@%d: %v", rec.Dataset, rec.Timestep, err)
					}
					mine += int64(len(buf))
				}
				if err := c.Detach(); err != nil {
					log.Fatalf("detach: %v", err)
				}
				mu.Lock()
				totalBytes += mine
				mu.Unlock()
			}()
		}
		wg.Wait()
		return float64(totalBytes) / 1e6
	}

	var coldMB, warmMB float64
	coldWall, coldAllocs, _ := measure(func() error { coldMB = pass(); return nil })
	coldStats := srv.CacheStats()
	warmWall, _, _ := measure(func() error { warmMB = pass(); return nil })
	warmStats := srv.CacheStats()

	coldMBps := coldMB / coldWall.Seconds()
	warmMBps := warmMB / warmWall.Seconds()

	// The server's stats are cumulative; subtract the cold snapshot to
	// get the warm pass on its own.
	warmHits := warmStats.Hits - coldStats.Hits
	warmMisses := warmStats.Misses - coldStats.Misses
	warmWaits := warmStats.Waits - coldStats.Waits
	warmRatio := 0.0
	if total := warmHits + warmMisses + warmWaits; total > 0 {
		warmRatio = float64(warmHits) / float64(total)
	}
	if warmRatio <= 0 {
		log.Fatalf("warm cache hit ratio is %v, want > 0 (stats %+v)", warmRatio, warmStats)
	}

	w := table()
	fmt.Fprintf(w, "pass\tclients\tMB/s\thits\tmisses\twaits\thit ratio\n")
	fmt.Fprintf(w, "cold\t%d\t%.1f\t%d\t%d\t%d\t%.3f\n", serveClients, coldMBps,
		coldStats.Hits, coldStats.Misses, coldStats.Waits, coldStats.HitRatio)
	fmt.Fprintf(w, "warm\t%d\t%.1f\t%d\t%d\t%d\t%.3f\n", serveClients, warmMBps,
		warmHits, warmMisses, warmWaits, warmRatio)
	w.Flush()
	fmt.Printf("expected: warm beats cold (no backend reads), and even the cold pass shows hits+waits —\n" +
		"8 clients pulling the same slabs share fetches via singleflight rather than multiplying them\n")

	bl.add(benchRecord{
		Experiment: "serve", Case: fmt.Sprintf("clients%d", serveClients), Workload: "fun3d",
		Config: map[string]any{"nx": nx, "procs": procs, "steps": steps,
			"clients": serveClients, "cache_mb": 256},
		SimMetrics: map[string]float64{
			"host-cold-MB/s": coldMBps,
			"host-warm-MB/s": warmMBps,
			"warm-hit-ratio": warmRatio,
			"cold-hit-ratio": coldStats.HitRatio,
		},
		WallNs: coldWall.Nanoseconds(), AllocsPerOp: coldAllocs,
	})
}
