// Command sdmbench regenerates the paper's evaluation: one table per
// figure of "A Scientific Data Management System for Irregular
// Applications" (IPDPS 2001), plus the ablations called out in
// DESIGN.md. Absolute magnitudes depend on the simulated-hardware
// profile (sdm.Origin2000Config); the claims are about shape — who
// wins, by roughly what factor, and where the crossovers fall.
//
// Usage:
//
//	sdmbench [-experiment all|fig5|fig6|fig7|ablations] [-nx 32] [-rtnx 40]
//	         [-procs 64] [-steps 2] [-rtsteps 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sdm"
	"sdm/internal/workloads"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5, fig6, fig7, ablations, or all")
	nx := flag.Int("nx", 32, "FUN3D mesh cells per dimension (paper: ~18M edges; 32 => ~245k)")
	rtnx := flag.Int("rtnx", 40, "RT mesh cells per dimension")
	procs := flag.Int("procs", 64, "process count for fig5/fig6")
	steps := flag.Int("steps", 2, "FUN3D checkpoint steps (paper: 2)")
	rtsteps := flag.Int("rtsteps", 5, "RT checkpoints (paper: 5)")
	flag.Parse()

	switch *experiment {
	case "fig5":
		runFig5(*nx, *procs)
	case "fig6":
		runFig6(*nx, *procs, *steps)
	case "fig7":
		runFig7(*rtnx, *rtsteps)
	case "ablations":
		runAblations(*nx, *procs)
	case "all":
		runFig5(*nx, *procs)
		runFig6(*nx, *procs, *steps)
		runFig7(*rtnx, *rtsteps)
		runAblations(*nx, *procs)
	default:
		log.Fatalf("unknown experiment %q", *experiment)
	}
}

func newFUN3D(nx int) *workloads.FUN3D {
	f, err := workloads.NewFUN3D(workloads.FUN3DConfig{NX: nx, NY: nx, NZ: nx})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
}

func runFig5(nx, procs int) {
	fmt.Printf("\n=== Figure 5: execution time for partitioning indices and data in FUN3D ===\n")
	f := newFUN3D(nx)
	fmt.Printf("mesh: %d nodes, %d edges; %d processes\n",
		f.Mesh.NumNodes(), f.Mesh.NumEdges(), procs)

	cl := sdm.NewCluster(sdm.Origin2000Config(procs))
	if err := f.Stage(cl); err != nil {
		log.Fatal(err)
	}
	orig, err := f.ImportAndPartition(cl, workloads.ModeOriginal, false)
	if err != nil {
		log.Fatal(err)
	}
	noHist, err := f.ImportAndPartition(cl, workloads.ModeSDM, true)
	if err != nil {
		log.Fatal(err)
	}
	withHist, err := f.ImportAndPartition(cl, workloads.ModeSDM, true)
	if err != nil {
		log.Fatal(err)
	}
	if !withHist.FromHistory {
		log.Fatal("history was not used on the second SDM run")
	}

	w := table()
	fmt.Fprintf(w, "mode\timport (s)\tindex distri. (s)\ttotal (s)\n")
	fmt.Fprintf(w, "Original\t%.3f\t%.3f\t%.3f\n", orig.ImportSec, orig.DistributeSec, orig.TotalSec)
	fmt.Fprintf(w, "SDM (without history)\t%.3f\t%.3f\t%.3f\n", noHist.ImportSec, noHist.DistributeSec, noHist.TotalSec)
	fmt.Fprintf(w, "SDM (with history)\t%.3f\t%.3f\t%.3f\n", withHist.ImportSec, withHist.DistributeSec, withHist.TotalSec)
	w.Flush()
	fmt.Printf("paper shape: Original slowest; history cuts both bars (Fig. 5 shows ~3x total)\n")
}

func runFig6(nx, procs, steps int) {
	fmt.Printf("\n=== Figure 6: I/O bandwidth for writing/reading data in FUN3D ===\n")
	f := newFUN3D(nx)
	fmt.Printf("5 datasets (4 node-sized + 1 five-times-larger), %d steps, %d processes\n",
		steps, procs)
	w := table()
	fmt.Fprintf(w, "organization\twrite (MB/s)\tread (MB/s)\tfiles\topens\tviews\n")
	for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level2, sdm.Level3} {
		cl := sdm.NewCluster(sdm.Origin2000Config(procs))
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		st, err := f.WriteReadBandwidth(cl, level, steps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%d\t%d\t%d\n",
			level, st.WriteMBps, st.ReadMBps, st.Files, st.FileOpens, st.FileViews)
	}
	w.Flush()
	fmt.Printf("paper shape: level3 >= level2 >= level1, differences small (cheap XFS opens)\n")
}

func runFig7(rtnx, rtsteps int) {
	fmt.Printf("\n=== Figure 7: I/O bandwidth for RT ===\n")
	r, err := workloads.NewRT(workloads.RTConfig{NX: rtnx, NY: rtnx, NZ: rtnx, Steps: rtsteps})
	if err != nil {
		log.Fatal(err)
	}
	m := r.RT.Mesh()
	fmt.Printf("mesh: %d nodes, %d boundary triangles; %d checkpoints\n",
		m.NumNodes(), r.RT.NumTriangles(), rtsteps)
	w := table()
	fmt.Fprintf(w, "mode\tprocs\ttotal (MB)\twrite (s)\tbandwidth (MB/s)\n")
	for _, mode := range []workloads.RTMode{workloads.RTOriginal, workloads.RTLevel1, workloads.RTLevel23} {
		for _, procs := range []int{32, 64} {
			cl := sdm.NewCluster(sdm.Origin2000Config(procs))
			st, err := r.WriteBandwidth(cl, mode)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%v\t%d\t%.1f\t%.3f\t%.1f\n",
				mode, procs, st.TotalMB, st.WriteSec, st.MBps)
		}
	}
	w.Flush()
	fmt.Printf("paper shape: SDM >> original; level1 ~ level2/3; 64 procs slower than 32\n")
}

func runAblations(nx, procs int) {
	fmt.Printf("\n=== Ablations (design choices from DESIGN.md) ===\n")
	f := newFUN3D(nx)

	// (a) Two-phase collective I/O versus independent noncontiguous I/O.
	fmt.Printf("\n-- collective (two-phase) vs independent irregular writes --\n")
	w := table()
	fmt.Fprintf(w, "I/O path\twrite (MB/s)\tread (MB/s)\tfs write reqs\n")
	for _, disable := range []bool{false, true} {
		cl := sdm.NewCluster(sdm.Origin2000Config(procs))
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		st, err := f.WriteReadBandwidthHints(cl, sdm.Level3, 1, sdm.Hints{DisableCollective: disable})
		if err != nil {
			log.Fatal(err)
		}
		name := "two-phase collective"
		if disable {
			name = "independent"
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\n", name, st.WriteMBps, st.ReadMBps, st.WriteReqs)
	}
	w.Flush()

	// (b) Metadata database cost: SDM with and without the catalog.
	fmt.Printf("\n-- metadata database overhead on the history path --\n")
	w = table()
	fmt.Fprintf(w, "configuration\timport (s)\tindex distri. (s)\n")
	{
		cl := sdm.NewCluster(sdm.Origin2000Config(procs))
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		st1, err := f.ImportAndPartition(cl, workloads.ModeSDM, true)
		if err != nil {
			log.Fatal(err)
		}
		st2, err := f.ImportAndPartition(cl, workloads.ModeSDM, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "with DB, ring\t%.3f\t%.3f\n", st1.ImportSec, st1.DistributeSec)
		fmt.Fprintf(w, "with DB, history\t%.3f\t%.3f\n", st2.ImportSec, st2.DistributeSec)
	}
	w.Flush()

	// (c) Striping width sweep: where parallel I/O saturates.
	fmt.Printf("\n-- I/O server count sweep (level 3 write bandwidth) --\n")
	w = table()
	fmt.Fprintf(w, "servers\twrite (MB/s)\n")
	for _, servers := range []int{1, 2, 5, 10, 20} {
		cfg := sdm.Origin2000Config(procs)
		cfg.Storage.NumServers = servers
		cl := sdm.NewCluster(cfg)
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		st, err := f.WriteReadBandwidth(cl, sdm.Level3, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%.1f\n", servers, st.WriteMBps)
	}
	w.Flush()

	// (d) High-open-cost file system: when level 3 matters (the paper's
	// motivating claim for level 3).
	fmt.Printf("\n-- level sensitivity to file-open cost (100x XFS) --\n")
	w = table()
	fmt.Fprintf(w, "organization\twrite (MB/s, cheap opens)\twrite (MB/s, expensive opens)\n")
	for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level2, sdm.Level3} {
		cheapCfg := sdm.Origin2000Config(procs)
		cl := sdm.NewCluster(cheapCfg)
		if err := f.Stage(cl); err != nil {
			log.Fatal(err)
		}
		cheap, err := f.WriteReadBandwidth(cl, level, 2)
		if err != nil {
			log.Fatal(err)
		}
		expCfg := sdm.Origin2000Config(procs)
		expCfg.Storage.OpenCost *= 100
		expCfg.Storage.ViewCost *= 100
		cl2 := sdm.NewCluster(expCfg)
		if err := f.Stage(cl2); err != nil {
			log.Fatal(err)
		}
		expensive, err := f.WriteReadBandwidth(cl2, level, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%v\t%.1f\t%.1f\n", level, cheap.WriteMBps, expensive.WriteMBps)
	}
	w.Flush()
	fmt.Printf("expected: with expensive opens, level3's advantage over level1 widens sharply\n")
}
