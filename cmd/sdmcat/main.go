// Command sdmcat reads dataset bytes back out of a saved run bundle
// (Cluster.SaveBundle): it resolves a (run, dataset, timestep) through
// the bundle's execution table to a (file, offset) and dumps the slab
// — the promise that data written through SDM stays reachable by name
// from the metadata catalog, demonstrated from a separate OS process.
//
// Usage:
//
//	sdmcat -list BUNDLEDIR
//	sdmcat -dataset pressure [-run 1] [-timestep 0] [-as auto|raw|double|int|long]
//	       [-head 10] [-o out.bin] BUNDLEDIR
//	sdmcat -remote http://host:8080 [-bundle name] -dataset pressure ...
//
// With -remote the bundle lives behind a running sdmd daemon instead
// of on the local disk; everything else — flags, output, bytes — is
// identical, byte for byte. With -as raw the slab's bytes go to stdout
// (or -o) verbatim; the typed forms print one value per line, decoded
// per the dataset's registered data type.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"
	"time"

	"sdm"
	"sdm/internal/pfs"
	"sdm/internal/wire"
	"sdm/sdmclient"
)

// inventory is the tool's bundle view, loadable from a local bundle
// directory or a remote daemon so the print path is shared.
type inventory struct {
	runs     []wire.Run
	datasets func(run int64) ([]wire.Dataset, error)
	writes   func(run int64) ([]wire.WriteRecord, error)
	// read resolves and fetches one full slab plus its type info.
	read func(run int64, dataset string, timestep int64) ([]byte, wire.Dataset, error)
}

func main() {
	list := flag.Bool("list", false, "list the bundle's runs, datasets, and recorded writes")
	run := flag.Int64("run", 0, "run id (default: the bundle's latest run)")
	dataset := flag.String("dataset", "", "dataset name to dump")
	timestep := flag.Int64("timestep", 0, "timestep to dump")
	as := flag.String("as", "auto", "output form: auto, raw, double, int, long")
	head := flag.Int64("head", 0, "print only the first N values (0 = all)")
	out := flag.String("o", "", "write raw bytes to this file instead of stdout")
	remote := flag.String("remote", "", "read from a sdmd daemon at this base URL instead of a local bundle")
	bundle := flag.String("bundle", "", "with -remote: bundle name on a multi-bundle daemon")
	flag.Parse()

	var inv *inventory
	var err error
	switch {
	case *remote != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: sdmcat -remote URL [-bundle name] [-list | -dataset name [options]]")
			os.Exit(2)
		}
		inv, err = openRemote(*remote, *bundle)
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: sdmcat [-list | -dataset name [options]] BUNDLEDIR")
			os.Exit(2)
		}
		if *bundle != "" {
			log.Fatal("sdmcat: -bundle requires -remote")
		}
		inv, err = openLocal(flag.Arg(0))
	}
	if err != nil {
		log.Fatal(describe(err))
	}

	if *list {
		printInventory(inv)
		return
	}
	if *dataset == "" {
		log.Fatal("sdmcat: -dataset is required (or use -list)")
	}
	if *run == 0 {
		if len(inv.runs) == 0 {
			log.Fatal("sdmcat: bundle has no runs")
		}
		*run = inv.runs[len(inv.runs)-1].RunID
	}

	buf, info, err := inv.read(*run, *dataset, *timestep)
	if err != nil {
		log.Fatal(describe(err))
	}

	form := *as
	if form == "auto" {
		switch info.DataType {
		case "INTEGER":
			form = "int"
		case "LONG":
			form = "long"
		default:
			form = "double"
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if form == "raw" {
		if _, err := w.Write(buf); err != nil {
			log.Fatal(err)
		}
		return
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	n := info.GlobalSize
	if *head > 0 && *head < n {
		n = *head
	}
	for i := int64(0); i < n; i++ {
		switch form {
		case "double":
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			fmt.Fprintf(bw, "%g\n", v)
		case "int":
			fmt.Fprintf(bw, "%d\n", int32(binary.LittleEndian.Uint32(buf[i*4:])))
		case "long":
			fmt.Fprintf(bw, "%d\n", int64(binary.LittleEndian.Uint64(buf[i*8:])))
		default:
			log.Fatalf("sdmcat: unknown -as form %q", form)
		}
	}
}

// describe prefixes errors with operator-facing context: a refused
// connection ("is sdmd running?") reads nothing like a missing
// dataset, because they need opposite fixes.
func describe(err error) string {
	switch {
	case errors.Is(err, sdmclient.ErrUnreachable):
		return fmt.Sprintf("sdmcat: cannot reach daemon: %v", err)
	case errors.Is(err, sdmclient.ErrNotFound):
		return fmt.Sprintf("sdmcat: %v", err)
	default:
		return fmt.Sprintf("sdmcat: %v", err)
	}
}

// openLocal loads the inventory straight from a bundle directory.
func openLocal(dir string) (*inventory, error) {
	cl, err := sdm.OpenBundle(dir, sdm.ClusterConfig{})
	if err != nil {
		return nil, err
	}
	cat := cl.Catalog
	cat.SetAccessCost(0)
	runs, err := cat.Runs(nil)
	if err != nil {
		return nil, err
	}
	inv := &inventory{
		datasets: func(run int64) ([]wire.Dataset, error) {
			infos, err := cat.Datasets(nil, run)
			if err != nil {
				return nil, err
			}
			out := make([]wire.Dataset, len(infos))
			for i, d := range infos {
				out[i] = wire.Dataset{RunID: d.RunID, Dataset: d.Dataset, AccessPattern: d.AccessPattern,
					DataType: d.DataType, StorageOrder: d.StorageOrder, GlobalSize: d.GlobalSize}
			}
			return out, nil
		},
		writes: func(run int64) ([]wire.WriteRecord, error) {
			recs, err := cat.WritesForRun(nil, run)
			if err != nil {
				return nil, err
			}
			out := make([]wire.WriteRecord, len(recs))
			for i, r := range recs {
				out[i] = wire.WriteRecord{RunID: r.RunID, Dataset: r.Dataset, Timestep: r.Timestep,
					FileOffset: r.FileOffset, FileName: r.FileName}
			}
			return out, nil
		},
		read: func(run int64, dataset string, timestep int64) ([]byte, wire.Dataset, error) {
			var none wire.Dataset
			info, err := cat.LookupDataset(nil, run, dataset)
			if err != nil {
				return nil, none, err
			}
			if info == nil {
				return nil, none, fmt.Errorf("dataset %q not registered for run %d", dataset, run)
			}
			rec, err := cat.LookupWrite(nil, run, dataset, timestep)
			if err != nil {
				return nil, none, err
			}
			if rec == nil {
				return nil, none, fmt.Errorf("no execution_table entry for run %d dataset %q timestep %d",
					run, dataset, timestep)
			}
			wd := wire.Dataset{RunID: info.RunID, Dataset: info.Dataset, DataType: info.DataType,
				StorageOrder: info.StorageOrder, AccessPattern: info.AccessPattern, GlobalSize: info.GlobalSize}
			buf := make([]byte, info.GlobalSize*wd.ElemSize())
			h, err := cl.FS.Open(rec.FileName, pfs.ReadOnly, nil)
			if err != nil {
				return nil, none, err
			}
			if _, err := h.ReadAt(buf, rec.FileOffset); err != nil {
				return nil, none, fmt.Errorf("reading %s@%d: %v", rec.FileName, rec.FileOffset, err)
			}
			return buf, wd, nil
		},
	}
	for _, r := range runs {
		inv.runs = append(inv.runs, wire.Run{RunID: r.RunID, Application: r.Application,
			Dimension: r.Dimension, ProblemSize: r.ProblemSize, Timesteps: r.Timesteps,
			Stamp: r.Stamp.Format("2006-01-02 15:04")})
	}
	return inv, nil
}

// openRemote loads the inventory from a sdmd daemon via the client SDK.
func openRemote(base, bundle string) (*inventory, error) {
	var opts []sdmclient.Option
	if bundle != "" {
		opts = append(opts, sdmclient.WithBundle(bundle))
	}
	c := sdmclient.New(base, opts...)
	runs, err := c.Runs()
	if err != nil {
		return nil, err
	}
	for i := range runs {
		if t, perr := time.Parse(time.RFC3339, runs[i].Stamp); perr == nil {
			runs[i].Stamp = t.Format("2006-01-02 15:04")
		}
	}
	return &inventory{
		runs:     runs,
		datasets: c.Datasets,
		writes:   c.Writes,
		read: func(run int64, dataset string, timestep int64) ([]byte, wire.Dataset, error) {
			var none wire.Dataset
			infos, err := c.Datasets(run)
			if err != nil {
				return nil, none, err
			}
			var info *wire.Dataset
			for i := range infos {
				if infos[i].Dataset == dataset {
					info = &infos[i]
					break
				}
			}
			if info == nil {
				return nil, none, fmt.Errorf("%w: dataset %q not registered for run %d", sdmclient.ErrNotFound, dataset, run)
			}
			buf, err := c.ReadDataset(run, dataset, timestep)
			if err != nil {
				return nil, none, err
			}
			return buf, *info, nil
		},
	}, nil
}

// printInventory lists what the bundle's catalog knows: runs, their
// datasets, and every recorded write.
func printInventory(inv *inventory) {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	for _, r := range inv.runs {
		fmt.Fprintf(w, "run %d\t%s\t%s\n", r.RunID, r.Application, r.Stamp)
		infos, err := inv.datasets(r.RunID)
		if err != nil {
			log.Fatal(describe(err))
		}
		for _, d := range infos {
			fmt.Fprintf(w, "  dataset %s\t%s x %d\t%s\n", d.Dataset, d.DataType, d.GlobalSize, d.AccessPattern)
		}
		recs, err := inv.writes(r.RunID)
		if err != nil {
			log.Fatal(describe(err))
		}
		for _, rec := range recs {
			fmt.Fprintf(w, "  write %s@%d\t%s\toffset %d\n", rec.Dataset, rec.Timestep, rec.FileName, rec.FileOffset)
		}
	}
	w.Flush()
}
