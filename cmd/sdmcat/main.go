// Command sdmcat reads dataset bytes back out of a saved run bundle
// (Cluster.SaveBundle): it resolves a (run, dataset, timestep) through
// the bundle's execution table to a (file, offset) and dumps the slab
// — the promise that data written through SDM stays reachable by name
// from the metadata catalog, demonstrated from a separate OS process.
//
// Usage:
//
//	sdmcat -list BUNDLEDIR
//	sdmcat -dataset pressure [-run 1] [-timestep 0] [-as auto|raw|double|int|long]
//	       [-head 10] [-o out.bin] BUNDLEDIR
//
// With -as raw the slab's bytes go to stdout (or -o) verbatim; the
// typed forms print one value per line, decoded per the dataset's
// registered data type.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"sdm"
	"sdm/internal/catalog"
	"sdm/internal/pfs"
)

func main() {
	list := flag.Bool("list", false, "list the bundle's runs, datasets, and recorded writes")
	run := flag.Int64("run", 0, "run id (default: the bundle's latest run)")
	dataset := flag.String("dataset", "", "dataset name to dump")
	timestep := flag.Int64("timestep", 0, "timestep to dump")
	as := flag.String("as", "auto", "output form: auto, raw, double, int, long")
	head := flag.Int64("head", 0, "print only the first N values (0 = all)")
	out := flag.String("o", "", "write raw bytes to this file instead of stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdmcat [-list | -dataset name [options]] BUNDLEDIR")
		os.Exit(2)
	}

	cl, err := sdm.OpenBundle(flag.Arg(0), sdm.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	cat := cl.Catalog
	cat.SetAccessCost(0)

	runs, err := cat.Runs(nil)
	if err != nil {
		log.Fatal(err)
	}
	if *list {
		printInventory(cat, runs)
		return
	}
	if *dataset == "" {
		log.Fatal("sdmcat: -dataset is required (or use -list)")
	}
	if *run == 0 {
		if len(runs) == 0 {
			log.Fatal("sdmcat: bundle has no runs")
		}
		*run = runs[len(runs)-1].RunID
	}

	info, err := cat.LookupDataset(nil, *run, *dataset)
	if err != nil {
		log.Fatal(err)
	}
	if info == nil {
		log.Fatalf("sdmcat: dataset %q not registered for run %d", *dataset, *run)
	}
	rec, err := cat.LookupWrite(nil, *run, *dataset, *timestep)
	if err != nil {
		log.Fatal(err)
	}
	if rec == nil {
		log.Fatalf("sdmcat: no execution_table entry for run %d dataset %q timestep %d",
			*run, *dataset, *timestep)
	}

	elemSize := int64(8)
	if info.DataType == "INTEGER" {
		elemSize = 4
	}
	buf := make([]byte, info.GlobalSize*elemSize)
	h, err := cl.FS.Open(rec.FileName, pfs.ReadOnly, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := h.ReadAt(buf, rec.FileOffset); err != nil {
		log.Fatalf("sdmcat: reading %s@%d: %v", rec.FileName, rec.FileOffset, err)
	}

	form := *as
	if form == "auto" {
		switch info.DataType {
		case "INTEGER":
			form = "int"
		case "LONG":
			form = "long"
		default:
			form = "double"
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if form == "raw" {
		if _, err := w.Write(buf); err != nil {
			log.Fatal(err)
		}
		return
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	n := info.GlobalSize
	if *head > 0 && *head < n {
		n = *head
	}
	for i := int64(0); i < n; i++ {
		switch form {
		case "double":
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			fmt.Fprintf(bw, "%g\n", v)
		case "int":
			fmt.Fprintf(bw, "%d\n", int32(binary.LittleEndian.Uint32(buf[i*4:])))
		case "long":
			fmt.Fprintf(bw, "%d\n", int64(binary.LittleEndian.Uint64(buf[i*8:])))
		default:
			log.Fatalf("sdmcat: unknown -as form %q", form)
		}
	}
}

// printInventory lists what the bundle's catalog knows: runs, their
// datasets, and every recorded write.
func printInventory(cat *catalog.Catalog, runs []catalog.Run) {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	for _, r := range runs {
		fmt.Fprintf(w, "run %d\t%s\t%s\n", r.RunID, r.Application, r.Stamp.Format("2006-01-02 15:04"))
		infos, err := cat.Datasets(nil, r.RunID)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range infos {
			fmt.Fprintf(w, "  dataset %s\t%s x %d\t%s\n", d.Dataset, d.DataType, d.GlobalSize, d.AccessPattern)
		}
		recs, err := cat.WritesForRun(nil, r.RunID)
		if err != nil {
			log.Fatal(err)
		}
		for _, rec := range recs {
			fmt.Fprintf(w, "  write %s@%d\t%s\toffset %d\n", rec.Dataset, rec.Timestep, rec.FileName, rec.FileOffset)
		}
	}
	w.Flush()
}
