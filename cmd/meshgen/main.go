// Command meshgen generates a uns3d.msh-style binary mesh file — the
// externally created input SDM imports — on the host file system,
// together with a sidecar layout description, and optionally a
// partitioning vector file.
//
// Usage:
//
//	meshgen [-nx 16] [-ny 0] [-nz 0] [-edgearrays 4] [-nodearrays 4]
//	        [-o uns3d.msh] [-partition 8]
//
// The layout sidecar (<output>.layout) holds the numbers a consumer
// needs to construct SDM import specs: edge count, node count, and
// array counts. The optional partitioning vector (<output>.part<N>) is
// the int32 node-to-rank assignment from the multilevel partitioner.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	"sdm/meshgen"
	"sdm/partitioner"
)

func main() {
	nx := flag.Int("nx", 16, "grid cells in x")
	ny := flag.Int("ny", 0, "grid cells in y (default nx)")
	nz := flag.Int("nz", 0, "grid cells in z (default nx)")
	edgeArrays := flag.Int("edgearrays", 4, "per-edge double arrays")
	nodeArrays := flag.Int("nodearrays", 4, "per-node double arrays")
	out := flag.String("o", "uns3d.msh", "output file")
	nparts := flag.Int("partition", 0, "also emit a partitioning vector for this many parts")
	flag.Parse()

	if *ny == 0 {
		*ny = *nx
	}
	if *nz == 0 {
		*nz = *nx
	}
	m, err := meshgen.GenerateTet(*nx, *ny, *nz)
	if err != nil {
		log.Fatal(err)
	}
	edgeData := make([][]float64, *edgeArrays)
	for k := range edgeData {
		edgeData[k] = m.EdgeData(k)
	}
	nodeData := make([][]float64, *nodeArrays)
	for k := range nodeData {
		nodeData[k] = m.NodeData(k)
	}
	buf, layout, err := meshgen.EncodeMsh(m, edgeData, nodeData)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	sidecar := fmt.Sprintf("edges %d\nnodes %d\nedgearrays %d\nnodearrays %d\n",
		layout.NumEdges, layout.NumNodes, layout.EdgeArrays, layout.NodeArrays)
	if err := os.WriteFile(*out+".layout", []byte(sidecar), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges, %.1f MB\n",
		*out, layout.NumNodes, layout.NumEdges, float64(len(buf))/1e6)

	if *nparts > 1 {
		g, err := partitioner.FromEdges(m.NumNodes(), m.Edge1, m.Edge2)
		if err != nil {
			log.Fatal(err)
		}
		vec, err := partitioner.Multilevel(g, *nparts, partitioner.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		pbuf := make([]byte, len(vec)*4)
		for i, p := range vec {
			binary.LittleEndian.PutUint32(pbuf[i*4:], uint32(p))
		}
		name := fmt.Sprintf("%s.part%d", *out, *nparts)
		if err := os.WriteFile(name, pbuf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: edge cut %d, balance %.3f\n",
			name, partitioner.EdgeCut(g, vec), partitioner.Balance(g, vec, *nparts))
	}
}
