// Command sdmsql is an interactive shell for the embedded metadata
// database (the MySQL stand-in). Statements may span multiple lines
// and are terminated by ';' (a final unterminated statement executes
// at EOF, so piped one-liners still work); results print after each
// complete statement. EXPLAIN SELECT … prints the query plan (which
// index serves the query and why, with a rows-scanned estimate)
// instead of rows. With -db it operates on a saved catalog snapshot
// and persists changes back with \w.
//
// Meta commands (on their own line): \t lists tables, \d <table>
// shows columns, \stats prints the engine's query statistics
// (plan-kind and single-shard vs scatter counts included), \w writes
// the database back to the -db file, \q quits.
//
// Usage:
//
//	sdmsql [-db catalog.db]
//	echo 'SELECT * FROM run_table' | sdmsql -db catalog.db
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"sdm/internal/metadb"
)

func main() {
	dbPath := flag.String("db", "", "metadb snapshot to load (and \\w to)")
	flag.Parse()

	db := metadb.New()
	if *dbPath != "" {
		if f, err := os.Open(*dbPath); err == nil {
			if err := db.Load(f); err != nil {
				log.Fatalf("loading %s: %v", *dbPath, err)
			}
			f.Close()
			fmt.Printf("loaded %s (%d tables)\n", *dbPath, len(db.TableNames()))
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	var pending strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if pending.Len() == 0 {
			fmt.Print("sdmsql> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		// Meta commands and comments only apply between statements.
		if pending.Len() == 0 {
			switch {
			case line == "" || strings.HasPrefix(line, "--"):
				prompt()
				continue
			case line == `\q`:
				return
			case line == `\t`:
				for _, t := range db.TableNames() {
					fmt.Println(t)
				}
				prompt()
				continue
			case strings.HasPrefix(line, `\d `):
				cols, err := db.Columns(strings.TrimSpace(line[3:]))
				if err != nil {
					fmt.Println("error:", err)
				} else {
					for _, c := range cols {
						fmt.Println(c)
					}
				}
				prompt()
				continue
			case line == `\stats`:
				printStats(db)
				prompt()
				continue
			case line == `\w`:
				if *dbPath == "" {
					fmt.Println("error: no -db path to write to")
				} else if err := save(db, *dbPath); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Printf("wrote %s\n", *dbPath)
				}
				prompt()
				continue
			}
		}
		pending.WriteString(raw)
		pending.WriteByte('\n')
		stmts, rest := splitStatements(pending.String())
		pending.Reset()
		pending.WriteString(rest)
		for _, stmt := range stmts {
			execute(db, stmt)
		}
		prompt()
	}
	// EOF flushes an unterminated trailing statement, keeping
	// `echo 'SELECT ...' | sdmsql` working without a semicolon.
	if tail := strings.TrimSpace(pending.String()); tail != "" {
		execute(db, tail)
	}
}

// splitStatements cuts the accumulated input at every ';' that sits
// outside a single-quoted SQL string (a doubled quote escapes one
// inside a string), returning the complete statements and the
// unterminated remainder.
func splitStatements(src string) (stmts []string, rest string) {
	start := 0
	inString := false
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\'':
			inString = !inString
		case ';':
			if inString {
				continue
			}
			if s := strings.TrimSpace(src[start:i]); s != "" {
				stmts = append(stmts, s)
			}
			start = i + 1
		}
	}
	return stmts, src[start:]
}

func execute(db *metadb.DB, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN") {
		rows, err := db.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(rows.Columns, "\t"))
		for _, row := range rows.Data {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
		}
		w.Flush()
		fmt.Printf("(%d rows)\n", rows.Len())
		return
	}
	n, err := db.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

// printStats dumps one consistent snapshot of the engine's counters,
// including how queries split across plan kinds and across
// single-shard vs scatter execution.
func printStats(db *metadb.DB) {
	st := db.StatsSnapshot()
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "queries\t%d\n", st.Queries)
	fmt.Fprintf(w, "rows scanned\t%d\n", st.RowsScanned)
	fmt.Fprintf(w, "index hits\t%d\n", st.IndexHits)
	fmt.Fprintf(w, "order skips\t%d\n", st.OrderSkips)
	fmt.Fprintf(w, "plan eq\t%d\n", st.PlanEq)
	fmt.Fprintf(w, "plan range\t%d\n", st.PlanRange)
	fmt.Fprintf(w, "plan scan\t%d\n", st.PlanScan)
	fmt.Fprintf(w, "single-shard plans\t%d\n", st.PlanSingleShard)
	fmt.Fprintf(w, "scatter plans\t%d\n", st.PlanScatter)
	fmt.Fprintf(w, "snapshots\t%d\n", st.Snapshots)
	fmt.Fprintf(w, "commits\t%d\n", st.Commits)
	fmt.Fprintf(w, "shard waits\t%d\n", st.ShardWaits)
	fmt.Fprintf(w, "shards\t%d\n", int64(db.NumShards()))
	w.Flush()
}

func save(db *metadb.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}
