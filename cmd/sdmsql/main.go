// Command sdmsql is an interactive shell for the embedded metadata
// database (the MySQL stand-in). It reads SQL statements from stdin,
// one per line, and prints results; with -db it operates on a saved
// catalog snapshot and persists changes back on exit with \w.
//
// Meta commands: \t lists tables, \d <table> shows columns,
// \w writes the database back to the -db file, \q quits.
//
// Usage:
//
//	sdmsql [-db catalog.db]
//	echo 'SELECT * FROM run_table' | sdmsql -db catalog.db
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"sdm/internal/metadb"
)

func main() {
	dbPath := flag.String("db", "", "metadb snapshot to load (and \\w to)")
	flag.Parse()

	db := metadb.New()
	if *dbPath != "" {
		if f, err := os.Open(*dbPath); err == nil {
			if err := db.Load(f); err != nil {
				log.Fatalf("loading %s: %v", *dbPath, err)
			}
			f.Close()
			fmt.Printf("loaded %s (%d tables)\n", *dbPath, len(db.TableNames()))
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Print("sdmsql> ")
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
		case line == `\q`:
			return
		case line == `\t`:
			for _, t := range db.TableNames() {
				fmt.Println(t)
			}
		case strings.HasPrefix(line, `\d `):
			cols, err := db.Columns(strings.TrimSpace(line[3:]))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for _, c := range cols {
				fmt.Println(c)
			}
		case line == `\w`:
			if *dbPath == "" {
				fmt.Println("error: no -db path to write to")
				break
			}
			if err := save(db, *dbPath); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("wrote %s\n", *dbPath)
			}
		default:
			execute(db, line)
		}
		if interactive {
			fmt.Print("sdmsql> ")
		}
	}
}

func execute(db *metadb.DB, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := db.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(rows.Columns, "\t"))
		for _, row := range rows.Data {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
		}
		w.Flush()
		fmt.Printf("(%d rows)\n", rows.Len())
		return
	}
	n, err := db.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

func save(db *metadb.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}
