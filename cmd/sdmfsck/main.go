// Command sdmfsck verifies — and with -repair, fixes — a saved run
// bundle's consistency: the write-ahead log is replayed or rolled
// back, the manifest's file inventory is checked against the backend,
// the catalog snapshot is loaded, and content-addressed bundles get a
// chunk refcount audit plus an orphan chunk-file sweep.
//
// Usage:
//
//	sdmfsck [-repair] [-q] BUNDLEDIR
//
// Exit status 0 means the bundle is consistent (after repairs, if
// -repair); 1 means errors remain; 2 means usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdm"
)

func main() {
	repair := flag.Bool("repair", false, "fix what can be fixed: replay/roll back the WAL, remove orphans, GC the cas pool")
	quiet := flag.Bool("q", false, "print nothing on a clean bundle")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdmfsck [-repair] [-q] BUNDLEDIR")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	rep, err := sdm.FsckBundle(dir, *repair)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdmfsck: %v\n", err)
		os.Exit(1)
	}
	if rep.WALPending {
		state := "uncommitted"
		if rep.WALSealed {
			state = "committed"
		}
		action := rep.WALAction
		if action == "" {
			action = "left in place"
		}
		fmt.Printf("wal: pending %s save, %s\n", state, action)
	}
	for _, r := range rep.Repaired {
		fmt.Printf("repaired: %s\n", r)
	}
	for _, e := range rep.Errors {
		fmt.Printf("error: %s\n", e)
	}
	if len(rep.Errors) > 0 {
		fmt.Printf("%s: %d files, %d bytes, %d orphans — %d error(s)\n",
			dir, rep.Files, rep.Bytes, rep.Orphans, len(rep.Errors))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("%s: clean — %d files, %d bytes, 0 errors\n", dir, rep.Files, rep.Bytes)
	}
}
