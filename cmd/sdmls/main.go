// Command sdmls inspects a saved SDM metadata catalog (a metadb
// snapshot written by Cluster.SaveCatalog): the runs, datasets, write
// records, imports, and index histories of the paper's six tables —
// the execution-flow picture of the paper's Figure 4 as text.
//
// Usage:
//
//	sdmls [-table all|runs|datasets|writes|imports|histories] catalog.db
//	sdmls -sql 'SELECT * FROM run_table' catalog.db
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"sdm/internal/catalog"
	"sdm/internal/metadb"
)

func main() {
	table := flag.String("table", "all", "which table(s) to show")
	sql := flag.String("sql", "", "run a raw SQL query instead")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdmls [-table name | -sql query] catalog.db")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	db := metadb.New()
	if err := db.Load(f); err != nil {
		log.Fatal(err)
	}
	cat := catalog.New(db)
	cat.SetAccessCost(0)

	if *sql != "" {
		rows, err := db.Query(*sql)
		if err != nil {
			log.Fatal(err)
		}
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(rows.Columns, "\t"))
		for _, row := range rows.Data {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
		}
		w.Flush()
		return
	}

	show := func(name string) bool { return *table == "all" || *table == name }
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)

	if show("runs") {
		runs, err := cat.Runs(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "== run_table (%d rows) ==\n", len(runs))
		fmt.Fprintln(w, "runid\tapplication\tdimension\tproblem_size\ttimesteps\tstamp")
		for _, r := range runs {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%s\n",
				r.RunID, r.Application, r.Dimension, r.ProblemSize, r.Timesteps,
				r.Stamp.Format("2006-01-02 15:04"))
		}
		w.Flush()
	}
	if show("datasets") {
		fmt.Fprintln(w, "\n== access_pattern_table ==")
		fmt.Fprintln(w, "runid\tdataset\tpattern\ttype\torder\tglobal_size")
		runs, _ := cat.Runs(nil)
		for _, r := range runs {
			infos, err := cat.Datasets(nil, r.RunID)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range infos {
				fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%d\n",
					d.RunID, d.Dataset, d.AccessPattern, d.DataType, d.StorageOrder, d.GlobalSize)
			}
		}
		w.Flush()
	}
	if show("writes") {
		fmt.Fprintln(w, "\n== execution_table ==")
		fmt.Fprintln(w, "runid\tdataset\ttimestep\tfile_offset\tfile_name")
		runs, _ := cat.Runs(nil)
		for _, r := range runs {
			recs, err := cat.WritesForRun(nil, r.RunID)
			if err != nil {
				log.Fatal(err)
			}
			for _, rec := range recs {
				fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%s\n",
					rec.RunID, rec.Dataset, rec.Timestep, rec.FileOffset, rec.FileName)
			}
		}
		w.Flush()
	}
	if show("imports") {
		fmt.Fprintln(w, "\n== import_table ==")
		fmt.Fprintln(w, "runid\timported_name\tfile\ttype\tcontent\toffset\tlength")
		runs, _ := cat.Runs(nil)
		for _, r := range runs {
			imps, err := cat.Imports(nil, r.RunID)
			if err != nil {
				log.Fatal(err)
			}
			for _, e := range imps {
				fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%d\t%d\n",
					e.RunID, e.ImportedName, e.FileName, e.DataType, e.FileContent, e.FileOffset, e.Length)
			}
		}
		w.Flush()
	}
	if show("histories") {
		hists, err := cat.Histories(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "\n== index_table (%d histories) ==\n", len(hists))
		fmt.Fprintln(w, "problem_size\tnum_nodes\tnprocs\tfile")
		for _, h := range hists {
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\n", h.ProblemSize, h.NumNodes, h.NProcs, h.FileName)
		}
		w.Flush()
	}
}
