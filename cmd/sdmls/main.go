// Command sdmls inspects a saved SDM metadata catalog (a metadb
// snapshot written by Cluster.SaveCatalog): the runs, datasets, write
// records, imports, and index histories of the paper's six tables —
// the execution-flow picture of the paper's Figure 4 as text.
//
// Usage:
//
//	sdmls [-table all|runs|datasets|writes|imports|histories] catalog.db
//	sdmls -sql 'SELECT * FROM run_table' catalog.db
//	sdmls -remote http://host:8080 [-bundle name] [-table ...]
//
// With -remote the tables come from a running sdmd daemon via the
// client SDK; -sql is local-only (the daemon does not expose raw SQL).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"sdm/internal/catalog"
	"sdm/internal/metadb"
	"sdm/internal/wire"
	"sdm/sdmclient"
)

// view is the tool's catalog view in wire types, loadable from a local
// catalog.db or a remote daemon so the print path is shared.
type view struct {
	runs      []wire.Run
	datasets  func(run int64) ([]wire.Dataset, error)
	writes    func(run int64) ([]wire.WriteRecord, error)
	imports   func(run int64) ([]wire.ImportEntry, error)
	histories func() ([]wire.IndexHistory, error)
}

func main() {
	table := flag.String("table", "all", "which table(s) to show")
	sql := flag.String("sql", "", "run a raw SQL query instead (local only)")
	remote := flag.String("remote", "", "read from a sdmd daemon at this base URL instead of a local catalog.db")
	bundle := flag.String("bundle", "", "with -remote: bundle name on a multi-bundle daemon")
	flag.Parse()

	var v *view
	switch {
	case *remote != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: sdmls -remote URL [-bundle name] [-table name]")
			os.Exit(2)
		}
		if *sql != "" {
			log.Fatal("sdmls: -sql needs a local catalog.db (the daemon does not expose raw SQL)")
		}
		var err error
		v, err = openRemote(*remote, *bundle)
		if err != nil {
			log.Fatal(describe(err))
		}
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: sdmls [-table name | -sql query] catalog.db")
			os.Exit(2)
		}
		if *bundle != "" {
			log.Fatal("sdmls: -bundle requires -remote")
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		db := metadb.New()
		if err := db.Load(f); err != nil {
			log.Fatal(err)
		}
		if *sql != "" {
			runSQL(db, *sql)
			return
		}
		v, err = openLocal(db)
		if err != nil {
			log.Fatal(err)
		}
	}

	show := func(name string) bool { return *table == "all" || *table == name }
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)

	if show("runs") {
		fmt.Fprintf(w, "== run_table (%d rows) ==\n", len(v.runs))
		fmt.Fprintln(w, "runid\tapplication\tdimension\tproblem_size\ttimesteps\tstamp")
		for _, r := range v.runs {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%s\n",
				r.RunID, r.Application, r.Dimension, r.ProblemSize, r.Timesteps, r.Stamp)
		}
		w.Flush()
	}
	if show("datasets") {
		fmt.Fprintln(w, "\n== access_pattern_table ==")
		fmt.Fprintln(w, "runid\tdataset\tpattern\ttype\torder\tglobal_size")
		for _, r := range v.runs {
			infos, err := v.datasets(r.RunID)
			if err != nil {
				log.Fatal(describe(err))
			}
			for _, d := range infos {
				fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%d\n",
					d.RunID, d.Dataset, d.AccessPattern, d.DataType, d.StorageOrder, d.GlobalSize)
			}
		}
		w.Flush()
	}
	if show("writes") {
		fmt.Fprintln(w, "\n== execution_table ==")
		fmt.Fprintln(w, "runid\tdataset\ttimestep\tfile_offset\tfile_name")
		for _, r := range v.runs {
			recs, err := v.writes(r.RunID)
			if err != nil {
				log.Fatal(describe(err))
			}
			for _, rec := range recs {
				fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%s\n",
					rec.RunID, rec.Dataset, rec.Timestep, rec.FileOffset, rec.FileName)
			}
		}
		w.Flush()
	}
	if show("imports") {
		fmt.Fprintln(w, "\n== import_table ==")
		fmt.Fprintln(w, "runid\timported_name\tfile\ttype\tcontent\toffset\tlength")
		for _, r := range v.runs {
			imps, err := v.imports(r.RunID)
			if err != nil {
				log.Fatal(describe(err))
			}
			for _, e := range imps {
				fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%d\t%d\n",
					e.RunID, e.ImportedName, e.FileName, e.DataType, e.FileContent, e.FileOffset, e.Length)
			}
		}
		w.Flush()
	}
	if show("histories") {
		hists, err := v.histories()
		if err != nil {
			log.Fatal(describe(err))
		}
		fmt.Fprintf(w, "\n== index_table (%d histories) ==\n", len(hists))
		fmt.Fprintln(w, "problem_size\tnum_nodes\tnprocs\tfile")
		for _, h := range hists {
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\n", h.ProblemSize, h.NumNodes, h.NProcs, h.FileName)
		}
		w.Flush()
	}
}

// describe keeps the two operator-facing failure classes distinct:
// transport failures say how to reach the daemon, 404s say what was
// missing on a healthy one.
func describe(err error) string {
	if errors.Is(err, sdmclient.ErrUnreachable) {
		return fmt.Sprintf("sdmls: cannot reach daemon: %v", err)
	}
	return fmt.Sprintf("sdmls: %v", err)
}

// runSQL executes one raw query against a loaded local snapshot.
func runSQL(db *metadb.DB, sql string) {
	rows, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(rows.Columns, "\t"))
	for _, row := range rows.Data {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	w.Flush()
}

// openLocal adapts a loaded metadb snapshot to the shared view.
func openLocal(db *metadb.DB) (*view, error) {
	cat := catalog.New(db)
	cat.SetAccessCost(0)
	runs, err := cat.Runs(nil)
	if err != nil {
		return nil, err
	}
	v := &view{
		datasets: func(run int64) ([]wire.Dataset, error) {
			infos, err := cat.Datasets(nil, run)
			if err != nil {
				return nil, err
			}
			out := make([]wire.Dataset, len(infos))
			for i, d := range infos {
				out[i] = wire.Dataset{RunID: d.RunID, Dataset: d.Dataset, AccessPattern: d.AccessPattern,
					DataType: d.DataType, StorageOrder: d.StorageOrder, GlobalSize: d.GlobalSize}
			}
			return out, nil
		},
		writes: func(run int64) ([]wire.WriteRecord, error) {
			recs, err := cat.WritesForRun(nil, run)
			if err != nil {
				return nil, err
			}
			out := make([]wire.WriteRecord, len(recs))
			for i, r := range recs {
				out[i] = wire.WriteRecord{RunID: r.RunID, Dataset: r.Dataset, Timestep: r.Timestep,
					FileOffset: r.FileOffset, FileName: r.FileName}
			}
			return out, nil
		},
		imports: func(run int64) ([]wire.ImportEntry, error) {
			imps, err := cat.Imports(nil, run)
			if err != nil {
				return nil, err
			}
			out := make([]wire.ImportEntry, len(imps))
			for i, e := range imps {
				out[i] = wire.ImportEntry{RunID: e.RunID, ImportedName: e.ImportedName, FileName: e.FileName,
					DataType: e.DataType, StorageOrder: e.StorageOrder, Partition: e.Partition,
					FileContent: e.FileContent, FileOffset: e.FileOffset, Length: e.Length}
			}
			return out, nil
		},
		histories: func() ([]wire.IndexHistory, error) {
			hists, err := cat.Histories(nil)
			if err != nil {
				return nil, err
			}
			out := make([]wire.IndexHistory, len(hists))
			for i, h := range hists {
				out[i] = wire.IndexHistory{ProblemSize: h.ProblemSize, NumNodes: h.NumNodes,
					NProcs: h.NProcs, Dimension: h.Dimension, FileName: h.FileName}
			}
			return out, nil
		},
	}
	for _, r := range runs {
		v.runs = append(v.runs, wire.Run{RunID: r.RunID, Application: r.Application,
			Dimension: r.Dimension, ProblemSize: r.ProblemSize, Timesteps: r.Timesteps,
			Stamp: r.Stamp.Format("2006-01-02 15:04")})
	}
	return v, nil
}

// openRemote adapts a sdmd daemon to the shared view.
func openRemote(base, bundle string) (*view, error) {
	var opts []sdmclient.Option
	if bundle != "" {
		opts = append(opts, sdmclient.WithBundle(bundle))
	}
	c := sdmclient.New(base, opts...)
	runs, err := c.Runs()
	if err != nil {
		return nil, err
	}
	for i := range runs {
		if t, perr := time.Parse(time.RFC3339, runs[i].Stamp); perr == nil {
			runs[i].Stamp = t.Format("2006-01-02 15:04")
		}
	}
	return &view{
		runs:      runs,
		datasets:  c.Datasets,
		writes:    c.Writes,
		imports:   c.Imports,
		histories: c.Histories,
	}, nil
}
