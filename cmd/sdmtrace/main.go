// Command sdmtrace digests a Chrome trace-event JSON file recorded by
// the simulator's span tracer (sdmbench -trace, or
// Tracer.WriteChromeFile): it validates the trace against the schema
// Perfetto expects, then prints the top-N span names by virtual-time
// self time, per-step span aggregates, and each PFS server's busy/idle
// fraction over the trace — the idle headroom an adaptive
// StepPipelineDepth could claim.
//
// Usage:
//
//	sdmtrace [-top 15] trace.json
//
// The exit status is nonzero for unreadable, schema-invalid, or empty
// traces, so CI can smoke-test trace production end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sdm/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdmtrace: ")
	topN := flag.Int("top", 15, "span names to list in the self-time table")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdmtrace [-top N] trace.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := obs.ReadChrome(f)
	if err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	spans, err := obs.ValidateChrome(tr)
	if err != nil {
		log.Fatalf("invalid trace %s: %v", path, err)
	}
	if spans == 0 {
		log.Fatalf("%s holds no spans — was tracing enabled?", path)
	}

	fmt.Printf("%s: valid Chrome trace\n", path)
	a := obs.Analyze(tr)
	if len(a.Procs) > 0 {
		fmt.Printf("tracks: %d processes", len(a.Procs))
		if n := len(a.Servers); n > 0 {
			fmt.Printf(" (including %d PFS server lanes)", n)
		}
		fmt.Println()
	}
	if err := a.WriteReport(os.Stdout, *topN); err != nil {
		log.Fatal(err)
	}
	if s := obs.StepSummary(tr); s != "" {
		fmt.Printf("\n%s", s)
	}
}
