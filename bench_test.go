// Benchmarks regenerating the paper's evaluation figures. Each
// benchmark drives the same workload implementations as cmd/sdmbench
// (internal/workloads) at a reduced default scale so `go test -bench=.`
// completes quickly; run cmd/sdmbench for paper-scale tables.
//
// Wall-clock ns/op measures the simulator, not the modelled machine:
// the reproduction's results are the custom metrics —
// sim-seconds/op for Figure 5 and simMB/s for Figures 6 and 7.
package sdm_test

import (
	"sync"
	"testing"
	"time"

	"sdm"
	"sdm/internal/workloads"
)

// benchFUN3D caches the generated FUN3D workload across benchmarks.
// 20^3 cells (~60k edges) is the smallest mesh where the history
// file's fixed costs (database lookup, open) amortize, as they do at
// the paper's 18M-edge scale.
var benchFUN3D = sync.OnceValues(func() (*workloads.FUN3D, error) {
	return workloads.NewFUN3D(workloads.FUN3DConfig{NX: 20, NY: 20, NZ: 20})
})

// benchRT caches the generated RT workload.
var benchRT = sync.OnceValues(func() (*workloads.RTWorkload, error) {
	return workloads.NewRT(workloads.RTConfig{NX: 16, NY: 16, NZ: 16, Steps: 3})
})

const benchProcs = 16

// BenchmarkFig5_IndexDistribution regenerates Figure 5: the cost of
// importing and partitioning the FUN3D mesh under the original
// application, SDM without a history file, and SDM with one.
func BenchmarkFig5_IndexDistribution(b *testing.B) {
	f, err := benchFUN3D()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mode workloads.PartitionMode, history bool) {
		var importSec, distrSec float64
		for i := 0; i < b.N; i++ {
			cl := sdm.NewCluster(sdm.Origin2000Config(benchProcs))
			if err := f.Stage(cl); err != nil {
				b.Fatal(err)
			}
			if history {
				// Prime the history file, unmeasured.
				if _, err := f.ImportAndPartition(cl, workloads.ModeSDM, true); err != nil {
					b.Fatal(err)
				}
			}
			st, err := f.ImportAndPartition(cl, mode, history)
			if err != nil {
				b.Fatal(err)
			}
			if history && !st.FromHistory {
				b.Fatal("history not used")
			}
			importSec += st.ImportSec
			distrSec += st.DistributeSec
		}
		b.ReportMetric(importSec/float64(b.N), "sim-import-s/op")
		b.ReportMetric(distrSec/float64(b.N), "sim-distri-s/op")
		b.ReportMetric((importSec+distrSec)/float64(b.N), "sim-total-s/op")
	}
	b.Run("original", func(b *testing.B) { run(b, workloads.ModeOriginal, false) })
	b.Run("sdm-nohistory", func(b *testing.B) { run(b, workloads.ModeSDM, false) })
	b.Run("sdm-history", func(b *testing.B) { run(b, workloads.ModeSDM, true) })
}

// BenchmarkFig6_FileOrganization regenerates Figure 6: write and read
// bandwidth under the three file-organization levels.
func BenchmarkFig6_FileOrganization(b *testing.B) {
	f, err := benchFUN3D()
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level2, sdm.Level3} {
		b.Run(level.String(), func(b *testing.B) {
			var writeMBps, readMBps float64
			for i := 0; i < b.N; i++ {
				cl := sdm.NewCluster(sdm.Origin2000Config(benchProcs))
				if err := f.Stage(cl); err != nil {
					b.Fatal(err)
				}
				st, err := f.WriteReadBandwidth(cl, level, 2)
				if err != nil {
					b.Fatal(err)
				}
				writeMBps += st.WriteMBps
				readMBps += st.ReadMBps
			}
			b.ReportMetric(writeMBps/float64(b.N), "sim-write-MB/s")
			b.ReportMetric(readMBps/float64(b.N), "sim-read-MB/s")
		})
	}
}

// BenchmarkFig7_RT regenerates Figure 7: RT write bandwidth for the
// original sequential code and SDM's level 1 and level 2/3, at two
// process counts.
func BenchmarkFig7_RT(b *testing.B) {
	r, err := benchRT()
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		mode  workloads.RTMode
		procs int
	}{
		{"original-8", workloads.RTOriginal, 8},
		{"original-16", workloads.RTOriginal, 16},
		{"level1-8", workloads.RTLevel1, 8},
		{"level1-16", workloads.RTLevel1, 16},
		{"level23-8", workloads.RTLevel23, 8},
		{"level23-16", workloads.RTLevel23, 16},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				cl := sdm.NewCluster(sdm.Origin2000Config(tc.procs))
				st, err := r.WriteBandwidth(cl, tc.mode)
				if err != nil {
					b.Fatal(err)
				}
				mbps += st.MBps
			}
			b.ReportMetric(mbps/float64(b.N), "sim-write-MB/s")
		})
	}
}

// BenchmarkAblation_TwoPhaseIO isolates the paper's key I/O
// optimization: collective two-phase writes versus independent
// noncontiguous writes of the same irregular data.
func BenchmarkAblation_TwoPhaseIO(b *testing.B) {
	f, err := benchFUN3D()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"collective", false}, {"independent", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				cl := sdm.NewCluster(sdm.Origin2000Config(benchProcs))
				if err := f.Stage(cl); err != nil {
					b.Fatal(err)
				}
				st, err := f.WriteReadBandwidthHints(cl, sdm.Level3, 1,
					sdm.Hints{DisableCollective: tc.disable})
				if err != nil {
					b.Fatal(err)
				}
				mbps += st.WriteMBps
			}
			b.ReportMetric(mbps/float64(b.N), "sim-write-MB/s")
		})
	}
}

// BenchmarkAblation_OpenCost shows when the level 3 organization
// matters: on a file system with expensive opens (the paper's
// motivating scenario), fewer files wins big.
func BenchmarkAblation_OpenCost(b *testing.B) {
	f, err := benchFUN3D()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name       string
		multiplier int64
	}{{"xfs-cheap-opens", 1}, {"expensive-opens-100x", 100}} {
		for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level3} {
			b.Run(tc.name+"/"+level.String(), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					cfg := sdm.Origin2000Config(benchProcs)
					cfg.Storage.OpenCost *= time.Duration(tc.multiplier)
					cfg.Storage.ViewCost *= time.Duration(tc.multiplier)
					cl := sdm.NewCluster(cfg)
					if err := f.Stage(cl); err != nil {
						b.Fatal(err)
					}
					st, err := f.WriteReadBandwidth(cl, level, 2)
					if err != nil {
						b.Fatal(err)
					}
					mbps += st.WriteMBps
				}
				b.ReportMetric(mbps/float64(b.N), "sim-write-MB/s")
			})
		}
	}
}

// BenchmarkAblation_StripeWidth sweeps the I/O server count, showing
// where collective bandwidth saturates.
func BenchmarkAblation_StripeWidth(b *testing.B) {
	f, err := benchFUN3D()
	if err != nil {
		b.Fatal(err)
	}
	for _, servers := range []int{1, 2, 5, 10} {
		b.Run(map[int]string{1: "servers-1", 2: "servers-2", 5: "servers-5", 10: "servers-10"}[servers],
			func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					cfg := sdm.Origin2000Config(benchProcs)
					cfg.Storage.NumServers = servers
					// A smaller stripe unit keeps the reduced-scale
					// write spread across all servers; paper-scale runs
					// (cmd/sdmbench) use the default 512 KiB stripes.
					cfg.Storage.StripeSize = 64 * 1024
					cl := sdm.NewCluster(cfg)
					if err := f.Stage(cl); err != nil {
						b.Fatal(err)
					}
					st, err := f.WriteReadBandwidth(cl, sdm.Level3, 1)
					if err != nil {
						b.Fatal(err)
					}
					mbps += st.WriteMBps
				}
				b.ReportMetric(mbps/float64(b.N), "sim-write-MB/s")
			})
	}
}

// BenchmarkAblation_HistoryRegistryCost measures what registering a
// history (the asynchronous write plus database rows) adds to a cold
// partition run — the price paid once to enable every later replay.
func BenchmarkAblation_HistoryRegistryCost(b *testing.B) {
	f, err := benchFUN3D()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		register bool
	}{{"without-registry", false}, {"with-registry", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				cl := sdm.NewCluster(sdm.Origin2000Config(benchProcs))
				if err := f.Stage(cl); err != nil {
					b.Fatal(err)
				}
				st, err := f.ImportAndPartition(cl, workloads.ModeSDM, tc.register)
				if err != nil {
					b.Fatal(err)
				}
				total += st.TotalSec
			}
			b.ReportMetric(total/float64(b.N), "sim-total-s/op")
		})
	}
}
