package ncsdm

import (
	"strings"
	"testing"

	"sdm"
)

// withCluster runs fn on every rank with an initialized manager.
func withCluster(t *testing.T, procs int, fn func(*sdm.Proc, *sdm.Manager)) *sdm.Cluster {
	t.Helper()
	cl := sdm.NewCluster(sdm.ClusterConfig{Procs: procs})
	err := cl.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("nctest", sdm.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Finalize()
		fn(p, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestDefineAndRoundTrip(t *testing.T) {
	withCluster(t, 4, func(p *sdm.Proc, s *sdm.Manager) {
		d := Create(s, "flow")
		if err := d.DefDim("cells", 64); err != nil {
			t.Error(err)
		}
		if err := d.DefVar("density", sdm.Double, []string{RecordDim, "cells"}); err != nil {
			t.Error(err)
		}
		if err := d.PutAttr("density", "units", "kg/m3"); err != nil {
			t.Error(err)
		}
		if err := d.PutAttr("", "title", "RT checkpoint series"); err != nil {
			t.Error(err)
		}
		if err := d.EndDef(); err != nil {
			t.Error(err)
			return
		}
		n, err := d.LocalSize("density")
		if err != nil || n != 16 {
			t.Errorf("local size = %d, %v", n, err)
		}
		for rec := int64(0); rec < 3; rec++ {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(p.Rank()*1000+i) + float64(rec)*0.5
			}
			if err := d.PutFloat64s("density", rec, vals); err != nil {
				t.Error(err)
				return
			}
		}
		got, err := d.GetFloat64s("density", 1, n)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range got {
			want := float64(p.Rank()*1000+i) + 0.5
			if got[i] != want {
				t.Errorf("rank %d rec 1 elem %d = %g, want %g", p.Rank(), i, got[i], want)
				return
			}
		}
		if d.NumRecords("density") != 3 {
			t.Errorf("records = %d", d.NumRecords("density"))
		}
	})
}

func TestHeaderPersistsAcrossOpen(t *testing.T) {
	cl := sdm.NewCluster(sdm.ClusterConfig{Procs: 2})
	err := cl.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("nctest", sdm.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Finalize()
		d := Create(s, "persisted")
		_ = d.DefDim("nodes", 10)
		_ = d.DefVar("temp", sdm.Double, []string{RecordDim, "nodes"})
		_ = d.PutAttr("temp", "units", "K")
		if err := d.EndDef(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// A second session (same storage) reopens by name alone.
	cl2 := sdm.NewCluster(sdm.ClusterConfig{Procs: 2})
	cl2.AttachStorage(cl)
	err = cl2.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("nctest2", sdm.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Finalize()
		d, err := Open(s, "persisted")
		if err != nil {
			t.Error(err)
			return
		}
		if dims := d.Dims(); dims["nodes"] != 10 {
			t.Errorf("dims = %v", dims)
		}
		if vars := d.Vars(); len(vars) != 1 || vars[0] != "temp" {
			t.Errorf("vars = %v", vars)
		}
		if units, ok := d.Attr("temp", "units"); !ok || units != "K" {
			t.Errorf("attr = %q, %v", units, ok)
		}
		// The reopened dataset accepts new records.
		n, _ := d.LocalSize("temp")
		if err := d.PutFloat64s("temp", 0, make([]float64, n)); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openMissing(cl2); err == nil || !strings.Contains(err.Error(), "no dataset") {
		t.Fatalf("missing dataset error = %v", err)
	}
}

func openMissing(cl *sdm.Cluster) (ok string, err error) {
	runErr := cl.Run(func(p *sdm.Proc) {
		s, ierr := p.Initialize("nctest3", sdm.Options{})
		if ierr != nil {
			err = ierr
			return
		}
		defer s.Finalize()
		_, oerr := Open(s, "definitely-missing")
		if p.Rank() == 0 {
			err = oerr
		}
	})
	if runErr != nil {
		return "", runErr
	}
	return "", err
}

func TestIrregularVarView(t *testing.T) {
	withCluster(t, 2, func(p *sdm.Proc, s *sdm.Manager) {
		d := Create(s, "irr")
		_ = d.DefDim("nodes", 8)
		_ = d.DefVar("u", sdm.Double, []string{RecordDim, "nodes"})
		if err := d.EndDef(); err != nil {
			t.Error(err)
			return
		}
		// Interleaved irregular view instead of the default blocks.
		var m []int32
		for g := p.Rank(); g < 8; g += 2 {
			m = append(m, int32(g))
		}
		if err := d.PutVarView("u", m); err != nil {
			t.Error(err)
			return
		}
		vals := make([]float64, len(m))
		for i, g := range m {
			vals[i] = float64(g) * 3
		}
		if err := d.PutFloat64s("u", 0, vals); err != nil {
			t.Error(err)
			return
		}
		got, err := d.GetFloat64s("u", 0, len(m))
		if err != nil {
			t.Error(err)
			return
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Errorf("irregular view round trip failed at %d", i)
			}
		}
	})
}

func TestDefineModeValidation(t *testing.T) {
	withCluster(t, 1, func(p *sdm.Proc, s *sdm.Manager) {
		d := Create(s, "v")
		if err := d.DefDim(RecordDim, 5); err == nil {
			t.Error("record dim declared explicitly")
		}
		if err := d.DefDim("n", 0); err == nil {
			t.Error("zero-size dim accepted")
		}
		_ = d.DefDim("n", 4)
		if err := d.DefDim("n", 4); err == nil {
			t.Error("duplicate dim accepted")
		}
		if err := d.DefVar("v", sdm.Double, []string{"missing"}); err == nil {
			t.Error("undeclared dim accepted")
		}
		if err := d.DefVar("v", sdm.Double, []string{"n", RecordDim}); err == nil {
			t.Error("record dim in non-leading position accepted")
		}
		if err := d.DefVar("v", sdm.Double, nil); err == nil {
			t.Error("dimensionless var accepted")
		}
		_ = d.DefVar("v", sdm.Double, []string{RecordDim, "n"})
		if err := d.DefVar("v", sdm.Double, []string{"n"}); err == nil {
			t.Error("duplicate var accepted")
		}
		if err := d.PutAttr("ghost", "k", "x"); err == nil {
			t.Error("attr on undeclared var accepted")
		}
		if err := d.PutFloat64s("v", 0, nil); err == nil {
			t.Error("write before EndDef accepted")
		}
		if err := d.EndDef(); err != nil {
			t.Error(err)
			return
		}
		if err := d.EndDef(); err == nil {
			t.Error("double EndDef accepted")
		}
		if err := d.DefDim("late", 3); err == nil {
			t.Error("DefDim after EndDef accepted")
		}
		if err := d.PutAttr("v", "k", "x"); err == nil {
			t.Error("PutAttr after EndDef accepted")
		}
		if err := d.PutFloat64s("zz", 0, nil); err == nil {
			t.Error("write to unknown var accepted")
		}
		// Non-record variable rejects rec != 0.
		d2 := Create(s, "v2")
		_ = d2.DefDim("n", 4)
		_ = d2.DefVar("fixedvar", sdm.Double, []string{"n"})
		if err := d2.EndDef(); err != nil {
			t.Error(err)
			return
		}
		n, _ := d2.LocalSize("fixedvar")
		if err := d2.PutFloat64s("fixedvar", 3, make([]float64, n)); err == nil {
			t.Error("record write to non-record var accepted")
		}
	})
}

func TestMultiVarMultiDim(t *testing.T) {
	withCluster(t, 2, func(p *sdm.Proc, s *sdm.Manager) {
		d := Create(s, "grid")
		_ = d.DefDim("x", 4)
		_ = d.DefDim("y", 6)
		_ = d.DefVar("field", sdm.Double, []string{RecordDim, "x", "y"})
		_ = d.DefVar("mask", sdm.Double, []string{"x", "y"})
		if err := d.EndDef(); err != nil {
			t.Error(err)
			return
		}
		// 4*6 = 24 elements per record, 12 per rank.
		n, _ := d.LocalSize("field")
		if n != 12 {
			t.Errorf("field local size = %d", n)
		}
		if err := d.PutFloat64s("mask", 0, make([]float64, n)); err != nil {
			t.Error(err)
		}
	})
}
