// Package ncsdm is a minimal netCDF-classic-style self-describing data
// layer implemented on top of SDM — the investigation the paper's
// summary proposes ("whether SDM can effectively be used as a strategy
// for implementing libraries such as HDF and netCDF").
//
// A Dataset has named dimensions, typed variables shaped over those
// dimensions, and string attributes. The variable data flows through an
// SDM data group (collective irregular/block I/O, file organization
// levels, execution-table offsets), while the self-describing header
// lives in SDM's annotation table, so a later run can open the dataset
// by name alone.
//
// The first dimension of a variable may be the record dimension
// (unlimited, netCDF-style): each record maps to one SDM timestep.
package ncsdm

import (
	"encoding/json"
	"fmt"
	"sort"

	"sdm"
)

// headerScope prefixes annotation scopes holding dataset headers.
const headerScope = "ncsdm:"

// RecordDim is the reserved name of the unlimited record dimension.
const RecordDim = "record"

// header is the persisted self-description.
type header struct {
	Dims  map[string]int64             `json:"dims"`
	Vars  map[string]varDef            `json:"vars"`
	Attrs map[string]map[string]string `json:"attrs"` // varName ("" = global) -> key -> value
}

type varDef struct {
	Type sdm.DataType `json:"type"`
	Dims []string     `json:"dims"`
}

// Dataset is an open self-describing dataset bound to one rank's SDM
// manager. All methods are collective unless noted.
type Dataset struct {
	s       *sdm.Manager
	name    string
	hdr     header
	group   *sdm.Group
	defined bool
	counts  map[string]int64 // records written per variable
	handles map[string]*sdm.Dataset[float64]
}

// handle returns the cached typed handle on a variable's backing SDM
// dataset, building it on first use so per-record Put/Get calls skip
// the attr lookup and type check.
func (d *Dataset) handle(name string) (*sdm.Dataset[float64], error) {
	if h, ok := d.handles[name]; ok {
		return h, nil
	}
	h, err := sdm.DatasetOf[float64](d.group, d.name+"."+name)
	if err != nil {
		return nil, err
	}
	if d.handles == nil {
		d.handles = make(map[string]*sdm.Dataset[float64])
	}
	d.handles[name] = h
	return h, nil
}

// Create starts a new dataset in define mode: declare dimensions,
// variables, and attributes, then call EndDef.
func Create(s *sdm.Manager, name string) *Dataset {
	return &Dataset{
		s:    s,
		name: name,
		hdr: header{
			Dims:  map[string]int64{},
			Vars:  map[string]varDef{},
			Attrs: map[string]map[string]string{"": {}},
		},
		counts: map[string]int64{},
	}
}

// Open loads an existing dataset's header from the annotation table
// and re-registers its variables with SDM for reading and appending.
func Open(s *sdm.Manager, name string) (*Dataset, error) {
	raw, err := s.Annotation(0, headerScope+name, "header")
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, fmt.Errorf("ncsdm: no dataset named %q", name)
	}
	d := Create(s, name)
	if err := json.Unmarshal(raw, &d.hdr); err != nil {
		return nil, fmt.Errorf("ncsdm: corrupt header for %q: %w", name, err)
	}
	if err := d.register(); err != nil {
		return nil, err
	}
	d.defined = true
	return d, nil
}

// DefDim declares a dimension. Size must be positive; the record
// dimension is implicit and must not be declared.
func (d *Dataset) DefDim(name string, size int64) error {
	if d.defined {
		return fmt.Errorf("ncsdm: DefDim after EndDef")
	}
	if name == RecordDim {
		return fmt.Errorf("ncsdm: %q is the implicit record dimension", RecordDim)
	}
	if size <= 0 {
		return fmt.Errorf("ncsdm: dimension %q must have positive size, got %d", name, size)
	}
	if _, dup := d.hdr.Dims[name]; dup {
		return fmt.Errorf("ncsdm: dimension %q already defined", name)
	}
	d.hdr.Dims[name] = size
	return nil
}

// DefVar declares a variable over previously declared dimensions. The
// record dimension, if used, must come first (netCDF's rule).
func (d *Dataset) DefVar(name string, t sdm.DataType, dims []string) error {
	if d.defined {
		return fmt.Errorf("ncsdm: DefVar after EndDef")
	}
	if _, dup := d.hdr.Vars[name]; dup {
		return fmt.Errorf("ncsdm: variable %q already defined", name)
	}
	if len(dims) == 0 {
		return fmt.Errorf("ncsdm: variable %q needs at least one dimension", name)
	}
	for i, dim := range dims {
		if dim == RecordDim {
			if i != 0 {
				return fmt.Errorf("ncsdm: record dimension must come first in variable %q", name)
			}
			continue
		}
		if _, ok := d.hdr.Dims[dim]; !ok {
			return fmt.Errorf("ncsdm: variable %q uses undeclared dimension %q", name, dim)
		}
	}
	d.hdr.Vars[name] = varDef{Type: t, Dims: append([]string{}, dims...)}
	return nil
}

// PutAttr attaches a string attribute to a variable ("" for a global
// attribute). Usable in define mode only.
func (d *Dataset) PutAttr(varName, key, value string) error {
	if d.defined {
		return fmt.Errorf("ncsdm: PutAttr after EndDef")
	}
	if varName != "" {
		if _, ok := d.hdr.Vars[varName]; !ok {
			return fmt.Errorf("ncsdm: attribute on undeclared variable %q", varName)
		}
	}
	if d.hdr.Attrs[varName] == nil {
		d.hdr.Attrs[varName] = map[string]string{}
	}
	d.hdr.Attrs[varName][key] = value
	return nil
}

// Attr reads an attribute (ok=false when absent). Local.
func (d *Dataset) Attr(varName, key string) (string, bool) {
	m := d.hdr.Attrs[varName]
	if m == nil {
		return "", false
	}
	v, ok := m[key]
	return v, ok
}

// Dims returns the declared dimensions.
func (d *Dataset) Dims() map[string]int64 {
	out := make(map[string]int64, len(d.hdr.Dims))
	for k, v := range d.hdr.Dims {
		out[k] = v
	}
	return out
}

// Vars lists the declared variable names in sorted order.
func (d *Dataset) Vars() []string {
	out := make([]string, 0, len(d.hdr.Vars))
	for v := range d.hdr.Vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// recordSize returns the number of elements in one record of a
// variable (the product of its non-record dimensions).
func (d *Dataset) recordSize(v varDef) int64 {
	n := int64(1)
	for _, dim := range v.Dims {
		if dim == RecordDim {
			continue
		}
		n *= d.hdr.Dims[dim]
	}
	return n
}

// register declares the SDM data group backing the variables.
func (d *Dataset) register() error {
	names := d.Vars()
	attrs := make([]sdm.Attr, 0, len(names))
	for _, name := range names {
		v := d.hdr.Vars[name]
		attrs = append(attrs, sdm.Attr{
			Name:       d.name + "." + name,
			Type:       v.Type,
			GlobalSize: d.recordSize(v),
			Pattern:    "IRREGULAR",
		})
	}
	g, err := d.s.SetAttributes(attrs)
	if err != nil {
		return err
	}
	d.group = g
	// Default views: contiguous block decomposition per variable, the
	// netCDF-style parallel access pattern. PutVarView overrides.
	for _, name := range names {
		v := d.hdr.Vars[name]
		if err := d.setBlockView(name, d.recordSize(v)); err != nil {
			return err
		}
	}
	return nil
}

func (d *Dataset) setBlockView(name string, globalN int64) error {
	c := d.s.Comm()
	per := globalN / int64(c.Size())
	rem := globalN % int64(c.Size())
	start := int64(c.Rank())*per + minI64(int64(c.Rank()), rem)
	count := per
	if int64(c.Rank()) < rem {
		count++
	}
	m := make([]int32, count)
	for i := range m {
		m[i] = int32(start + int64(i))
	}
	_, err := d.group.DataView([]string{d.name + "." + name}, m)
	return err
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// EndDef leaves define mode: the header is persisted to the annotation
// table and the SDM group is created. Collective.
func (d *Dataset) EndDef() error {
	if d.defined {
		return fmt.Errorf("ncsdm: EndDef called twice")
	}
	raw, err := json.Marshal(d.hdr)
	if err != nil {
		return err
	}
	if err := d.s.Annotate(0, headerScope+d.name, "header", raw); err != nil {
		return err
	}
	if err := d.register(); err != nil {
		return err
	}
	d.defined = true
	return nil
}

// PutVarView replaces a variable's default block view with an irregular
// map array (local element i stores global element mapArr[i]).
// Collective.
func (d *Dataset) PutVarView(name string, mapArr []int32) error {
	if !d.defined {
		return fmt.Errorf("ncsdm: PutVarView before EndDef")
	}
	if _, ok := d.hdr.Vars[name]; !ok {
		return fmt.Errorf("ncsdm: no variable %q", name)
	}
	_, err := d.group.DataView([]string{d.name + "." + name}, mapArr)
	return err
}

// LocalSize reports how many elements of a variable's record this rank
// holds under the current view.
func (d *Dataset) LocalSize(name string) (int, error) {
	v, ok := d.hdr.Vars[name]
	if !ok {
		return 0, fmt.Errorf("ncsdm: no variable %q", name)
	}
	globalN := d.recordSize(v)
	c := d.s.Comm()
	per := globalN / int64(c.Size())
	if int64(c.Rank()) < globalN%int64(c.Size()) {
		per++
	}
	return int(per), nil
}

// PutFloat64s writes record `rec` of a variable (rec must be 0 for
// non-record variables). Collective.
func (d *Dataset) PutFloat64s(name string, rec int64, vals []float64) error {
	if !d.defined {
		return fmt.Errorf("ncsdm: PutFloat64s before EndDef")
	}
	v, ok := d.hdr.Vars[name]
	if !ok {
		return fmt.Errorf("ncsdm: no variable %q", name)
	}
	if !d.hasRecordDim(v) && rec != 0 {
		return fmt.Errorf("ncsdm: variable %q has no record dimension", name)
	}
	h, err := d.handle(name)
	if err != nil {
		return err
	}
	if err := h.PutAt(rec, vals); err != nil {
		return err
	}
	if rec+1 > d.counts[name] {
		d.counts[name] = rec + 1
	}
	return nil
}

// GetFloat64s reads record `rec` of a variable into this rank's view.
// Collective.
func (d *Dataset) GetFloat64s(name string, rec int64, localN int) ([]float64, error) {
	if !d.defined {
		return nil, fmt.Errorf("ncsdm: GetFloat64s before EndDef")
	}
	if _, ok := d.hdr.Vars[name]; !ok {
		return nil, fmt.Errorf("ncsdm: no variable %q", name)
	}
	h, err := d.handle(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, localN)
	if err := h.GetAt(rec, out); err != nil {
		return nil, err
	}
	return out, nil
}

// NumRecords reports how many records of a variable this session wrote.
func (d *Dataset) NumRecords(name string) int64 { return d.counts[name] }

func (d *Dataset) hasRecordDim(v varDef) bool {
	return len(v.Dims) > 0 && v.Dims[0] == RecordDim
}
