package sdm

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"sdm/internal/pfs"
	"sdm/internal/server"
	"sdm/sdmclient"
)

// TestServeBundleOverHTTP is the end-to-end network path: one cluster
// writes a run and saves a bundle; a fresh cluster opens the bundle
// and serves it through the sdmd core; a client reads every slab over
// HTTP and must get bytes identical to the local catalog-resolved read
// — the same identity sdmcat -remote is held to in CI against a real
// second OS process.
func TestServeBundleOverHTTP(t *testing.T) {
	const (
		procs   = 4
		globalN = 1 << 12
		steps   = 3
	)
	dir := filepath.Join(t.TempDir(), "bundle")
	writer := NewCluster(ClusterConfig{Procs: procs})
	writeDemoRun(t, writer, globalN, steps)
	if err := writer.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}

	cl, err := OpenBundle(dir, ClusterConfig{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{BlockSize: 64 << 10})
	if err := srv.Mount("bundle", server.Source{Catalog: cl.Catalog, FS: cl.FS}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c := sdmclient.New(hs.URL)
	at, err := c.Attach(sdmclient.AttachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Datasets) != 2 {
		t.Fatalf("attach saw %d datasets, want 2", len(at.Datasets))
	}

	cl.Catalog.SetAccessCost(0)
	for ts := int64(0); ts < steps; ts++ {
		for _, ds := range []string{"pressure", "velocity"} {
			// Local read, exactly as sdmcat computes it.
			info, err := cl.Catalog.LookupDataset(nil, at.Run.RunID, ds)
			if err != nil || info == nil {
				t.Fatalf("LookupDataset(%s): %v %v", ds, info, err)
			}
			rec, err := cl.Catalog.LookupWrite(nil, at.Run.RunID, ds, ts)
			if err != nil || rec == nil {
				t.Fatalf("LookupWrite(%s@%d): %v %v", ds, ts, rec, err)
			}
			want := make([]byte, info.GlobalSize*8)
			h, err := cl.FS.Open(rec.FileName, pfs.ReadOnly, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.ReadAt(want, rec.FileOffset); err != nil {
				t.Fatal(err)
			}

			got, err := c.ReadDataset(at.Run.RunID, ds, ts)
			if err != nil {
				t.Fatalf("remote read %s@%d: %v", ds, ts, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("remote read %s@%d: bytes differ from local bundle read", ds, ts)
			}
		}
	}

	// The slabs were each read once remotely after block-cache warmup
	// within the read; a second full pass must be all hits.
	before := srv.CacheStats()
	for ts := int64(0); ts < steps; ts++ {
		for _, ds := range []string{"pressure", "velocity"} {
			if _, err := c.ReadDataset(at.Run.RunID, ds, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := srv.CacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("warm pass added no cache hits: before %+v after %+v", before, after)
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
}
