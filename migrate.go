package sdm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sdm/internal/metadb"
	"sdm/internal/store"
)

// MigrateBundle moves a saved bundle between storage tiers — hot
// (dir/cas) to cold (obj) and back — by committing the source's
// catalog and file bytes into dstDir under opts' backend through the
// same 3-phase WAL protocol as SaveBundle, so a crash mid-migration
// leaves the destination exactly-old-or-new.
//
// Migration is incremental by execution-table delta: when the
// destination already holds a bundle, the two catalogs' execution
// tables are diffed, and only files that new execution rows landed in
// (plus files missing from or size-mismatched against the destination
// manifest) are copied; everything else is kept in place and protected
// from the apply sweep by the manifest inventory. The catalog is
// copied verbatim, so a migrated bundle answers every metadata query
// identically to its source.
//
// All byte movement happens in host time plus (for "obj" ends) the
// remote's own timeline — no simulated rank clock is touched, so
// tiering never changes an application's simulated metrics.

// MigrateStats reports what a migration moved.
type MigrateStats struct {
	// Files counts the destination manifest's inventory; FilesCopied
	// of those were staged by this migration and FilesKept were
	// already present and unchanged.
	Files       int
	FilesCopied int
	FilesKept   int
	BytesCopied int64
	// DeltaRecords counts execution-table rows present in the source
	// catalog but not the destination's — the write activity since the
	// last migration. Zero on a full (non-incremental) copy.
	DeltaRecords int
	// Incremental reports whether a destination bundle existed and the
	// copy was delta-driven.
	Incremental bool
}

// execKey identifies one execution-table row for delta comparison.
type execKey struct {
	runid    int64
	dataset  string
	timestep int64
	offset   int64
	file     string
}

// readExecTable loads a serialized catalog and returns its execution
// rows keyed for comparison, mapped to the file each row landed in.
func readExecTable(catBytes []byte) (map[execKey]string, error) {
	db := metadb.New()
	if err := db.Load(bytes.NewReader(catBytes)); err != nil {
		return nil, fmt.Errorf("sdm: loading catalog for delta: %w", err)
	}
	rows, err := db.Query(`SELECT runid, dataset, timestep, file_offset, file_name FROM execution_table`)
	if err != nil {
		return nil, fmt.Errorf("sdm: reading execution table: %w", err)
	}
	out := make(map[execKey]string, rows.Len())
	for _, r := range rows.Data {
		k := execKey{
			runid:    r[0].AsInt(),
			dataset:  r[1].AsText(),
			timestep: r[2].AsInt(),
			offset:   r[3].AsInt(),
			file:     r[4].AsText(),
		}
		out[k] = k.file
	}
	return out, nil
}

// readBundleObject reads one object's full contents from a backend.
func readBundleObject(b store.Backend, name string, size int64) ([]byte, error) {
	obj, err := b.Open(name)
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := obj.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return data, nil
}

// MigrateBundle migrates the bundle in srcDir into dstDir under opts'
// backend (default "dir"); see the package comment above for the
// incremental-delta and crash-consistency contract. The source is
// never modified.
func MigrateBundle(srcDir, dstDir string, opts BundleOptions) (MigrateStats, error) {
	var st MigrateStats
	if opts.Backend == "" {
		opts.Backend = "dir"
	}
	absSrc, absDst := srcDir, dstDir
	if a, err := filepath.Abs(srcDir); err == nil {
		absSrc = filepath.Clean(a)
	}
	if a, err := filepath.Abs(dstDir); err == nil {
		absDst = filepath.Clean(a)
	}
	if absSrc == absDst {
		return st, fmt.Errorf("sdm: migrate: source and destination are the same bundle %q", absSrc)
	}
	// Both bundle locks, in path order, so concurrent migrations
	// between the same pair cannot deadlock.
	locks := []*sync.Mutex{bundleLock(srcDir), bundleLock(dstDir)}
	if absDst < absSrc {
		locks[0], locks[1] = locks[1], locks[0]
	}
	locks[0].Lock()
	defer locks[0].Unlock()
	locks[1].Lock()
	defer locks[1].Unlock()

	// Finish or roll back interrupted saves on both ends first.
	if err := recoverBundleLocked(srcDir, nil); err != nil {
		return st, fmt.Errorf("sdm: migrate: recovering source: %w", err)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return st, fmt.Errorf("sdm: migrate: creating destination: %w", err)
	}
	if err := recoverBundleLocked(dstDir, nil); err != nil {
		return st, fmt.Errorf("sdm: migrate: recovering destination: %w", err)
	}

	// Source inventory and catalog.
	rawSrc, err := os.ReadFile(filepath.Join(srcDir, bundleManifestName))
	if err != nil {
		return st, fmt.Errorf("sdm: migrate: opening source bundle: %w", err)
	}
	var srcM bundleManifest
	if err := json.Unmarshal(rawSrc, &srcM); err != nil {
		return st, fmt.Errorf("sdm: migrate: corrupt source manifest: %w", err)
	}
	srcB, _, err := bundleBackend(srcDir, srcM.spec(), opts.Faults, opts.Retry)
	if err != nil {
		return st, err
	}
	catBytes, err := os.ReadFile(filepath.Join(srcDir, bundleCatalogName))
	if err != nil {
		return st, fmt.Errorf("sdm: migrate: reading source catalog: %w", err)
	}

	// Delta against an existing destination: changed files are those
	// that execution rows new to the destination landed in.
	copyAll := true
	changed := map[string]bool{}
	dstSizes := map[string]int64{}
	if rawDst, err := os.ReadFile(filepath.Join(dstDir, bundleManifestName)); err == nil {
		var dstM bundleManifest
		if err := json.Unmarshal(rawDst, &dstM); err != nil {
			return st, fmt.Errorf("sdm: migrate: corrupt destination manifest: %w", err)
		}
		if dstM.Backend != opts.Backend {
			return st, fmt.Errorf("sdm: migrate: destination bundle is %q, asked for %q — use a fresh directory",
				dstM.Backend, opts.Backend)
		}
		dstCat, err := os.ReadFile(filepath.Join(dstDir, bundleCatalogName))
		if err != nil {
			return st, fmt.Errorf("sdm: migrate: reading destination catalog: %w", err)
		}
		srcRows, err := readExecTable(catBytes)
		if err != nil {
			return st, err
		}
		dstRows, err := readExecTable(dstCat)
		if err != nil {
			return st, err
		}
		for k, file := range srcRows {
			if _, ok := dstRows[k]; !ok {
				st.DeltaRecords++
				changed[file] = true
			}
		}
		for _, f := range dstM.Files {
			dstSizes[f.Name] = f.Size
		}
		copyAll = false
		st.Incremental = true
	}

	// Plan: stage files the delta names, plus anything the destination
	// lacks or holds at the wrong size (a GC'd or corrupt tier must
	// heal on the next migration).
	plan := make([]bundlePlanEntry, 0, len(srcM.Files))
	m := bundleManifest{
		Format:    1,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Backend:   opts.Backend,
		Compress:  opts.Compress,
		ChunkSize: opts.ChunkSize,
		Files:     srcM.Files,
	}
	if opts.Backend == "obj" {
		m.Endpoint = bundleEndpoint(dstDir, opts.Endpoint)
		m.PartSize = opts.PartSize
	}
	for _, f := range srcM.Files {
		sz, have := dstSizes[f.Name]
		if !copyAll && have && sz == f.Size && !changed[f.Name] {
			st.FilesKept++
			continue
		}
		data, err := readBundleObject(srcB, f.Name, f.Size)
		if err != nil {
			return st, fmt.Errorf("sdm: migrate: reading %q from source: %w", f.Name, err)
		}
		plan = append(plan, bundlePlanEntry{name: f.Name, data: data})
		st.FilesCopied++
		st.BytesCopied += int64(len(data))
	}
	st.Files = len(srcM.Files)

	manifestJSON, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return st, err
	}
	manifestJSON = append(manifestJSON, '\n')

	dstB, svc, err := bundleBackend(dstDir, opts.spec(), opts.Faults, opts.Retry)
	if err != nil {
		return st, err
	}
	dstB = meterBackend(dstB, opts.Metrics)
	registerObjstoreMetrics(opts.Metrics, svc)
	if err := writeBundleWAL(dstDir, dstB, plan, catBytes, manifestJSON, &opts); err != nil {
		return st, err
	}
	if r := opts.Metrics; r != nil {
		r.Counter("bundle.migrations").Add(1)
		r.Counter("bundle.migrate.files_copied").Add(int64(st.FilesCopied))
		r.Counter("bundle.migrate.bytes_copied").Add(st.BytesCopied)
	}
	return st, nil
}
