package sdm_test

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sdm"
	"sdm/internal/obs"
	"sdm/internal/workloads"
)

func traceFUN3D(t *testing.T) *workloads.FUN3D {
	t.Helper()
	f, err := workloads.NewFUN3D(workloads.FUN3DConfig{NX: 8, NY: 8, NZ: 8})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runPipeline runs the Figure-6 pipelined write workload, optionally
// traced, and returns the cluster plus its tracer (nil when untraced).
func runPipeline(t *testing.T, f *workloads.FUN3D, procs, steps, depth int, traced bool) (*sdm.Cluster, *sdm.Tracer, float64) {
	t.Helper()
	cl := sdm.NewCluster(sdm.Origin2000Config(procs))
	var tr *sdm.Tracer
	if traced {
		tr = sdm.NewTracer()
		cl.SetTracer(tr)
		cl.SetMetrics(sdm.NewRegistry())
	}
	if err := f.Stage(cl); err != nil {
		t.Fatal(err)
	}
	st, err := f.PipelineWriteBandwidth(cl, steps, depth)
	if err != nil {
		t.Fatal(err)
	}
	return cl, tr, st.WriteMBps
}

// Tracing only observes virtual clocks, never advances them: a traced
// run must be bit-identical to an untraced one — bandwidth, per-rank
// clocks, pfs stats, db query counts, and file bytes — at every
// pipeline depth.
func TestTracingBitIdentical(t *testing.T) {
	f := traceFUN3D(t)
	const procs, steps = 8, 3
	for _, depth := range []int{1, 2, 4} {
		t.Run("depth"+strconv.Itoa(depth), func(t *testing.T) {
			offCl, _, offMBps := runPipeline(t, f, procs, steps, depth, false)
			onCl, tr, onMBps := runPipeline(t, f, procs, steps, depth, true)
			if tr.SpanCount() == 0 {
				t.Fatal("traced run recorded no spans")
			}
			if offMBps != onMBps {
				t.Fatalf("tracing perturbed bandwidth: off %.9f, on %.9f MB/s", offMBps, onMBps)
			}
			for r := 0; r < procs; r++ {
				if a, b := offCl.World.Comm(r).Now(), onCl.World.Comm(r).Now(); a != b {
					t.Fatalf("rank %d virtual clock differs: off %v, on %v", r, a, b)
				}
			}
			if a, b := offCl.FS.StatsSnapshot(), onCl.FS.StatsSnapshot(); a != b {
				t.Fatalf("pfs stats differ:\noff %+v\non  %+v", a, b)
			}
			if a, b := offCl.DB.QueryCount(), onCl.DB.QueryCount(); a != b {
				t.Fatalf("db query counts differ: off %d, on %d", a, b)
			}
			offFiles, onFiles := offCl.ListFiles(), onCl.ListFiles()
			if len(offFiles) != len(onFiles) {
				t.Fatalf("file counts differ: %d vs %d", len(offFiles), len(onFiles))
			}
			for i, name := range offFiles {
				if onFiles[i] != name {
					t.Fatalf("file sets differ at %d: %q vs %q", i, name, onFiles[i])
				}
				a, err := offCl.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				b, err := onCl.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				if string(a) != string(b) {
					t.Fatalf("file %q bytes differ with tracing on", name)
				}
			}
		})
	}
}

// Span-structure invariants over a real traced run: every Begin was
// matched by End, no negative spans, flush spans carry their step and
// stay inside that step's span on the same rank, and a deep pipeline
// actually produces overlapping in-flight flushes.
func TestSpanInvariants(t *testing.T) {
	f := traceFUN3D(t)
	const procs, steps = 8, 4
	for _, depth := range []int{1, 2, 4} {
		t.Run("depth"+strconv.Itoa(depth), func(t *testing.T) {
			_, tr, _ := runPipeline(t, f, procs, steps, depth, true)
			if got := tr.OpenCount(); got != 0 {
				t.Fatalf("open spans after Finalize = %d, want 0", got)
			}
			spans := tr.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}

			// Step span bounds per (pid, step annotation).
			type key struct {
				pid  int
				step string
			}
			stepBounds := map[key][2]int64{}
			arg := func(s *obs.Span, k string) (string, bool) {
				for _, kv := range s.Args {
					if kv.Key == k {
						return kv.Val, true
					}
				}
				return "", false
			}
			for i := range spans {
				s := &spans[i]
				if s.End < s.Start {
					t.Fatalf("span %s/%s has negative duration [%d,%d]", s.Cat, s.Name, s.Start, s.End)
				}
				if s.Cat == "core" && s.Name == "step" {
					st, _ := arg(s, "step")
					stepBounds[key{s.Pid, st}] = [2]int64{int64(s.Start), int64(s.End)}
				}
			}

			flushes, overlapping := 0, false
			var prevEnd map[int]int64
			prevEnd = map[int]int64{}
			for i := range spans {
				s := &spans[i]
				if s.Cat != "core" || s.Name != "flush:write" {
					continue
				}
				flushes++
				if _, ok := arg(s, "file"); !ok {
					t.Fatalf("flush span without file annotation: %+v", s)
				}
				st, ok := arg(s, "step")
				if !ok {
					t.Fatalf("flush span without step annotation: %+v", s)
				}
				if b, ok := stepBounds[key{s.Pid, st}]; ok {
					if int64(s.Start) < b[0] || int64(s.End) > b[1] {
						t.Fatalf("flush [%d,%d] escapes step %s span [%d,%d] on pid %d",
							s.Start, s.End, st, b[0], b[1], s.Pid)
					}
				} else {
					t.Fatalf("flush annotated with step %s but no step span on pid %d", st, s.Pid)
				}
				if end, ok := prevEnd[s.Pid]; ok && int64(s.Start) < end {
					overlapping = true
				}
				if int64(s.End) > prevEnd[s.Pid] {
					prevEnd[s.Pid] = int64(s.End)
				}
			}
			if flushes == 0 {
				t.Fatal("no flush:write spans recorded")
			}
			if depth >= 4 && !overlapping {
				t.Fatal("depth-4 pipeline shows no overlapping flush spans")
			}
		})
	}
}

// End-to-end Chrome export: a depth-4 trace written to disk parses,
// validates against the schema, shows rank and server tracks, and
// every exported lane is a proper nesting (Perfetto renders it
// without inference).
func TestChromeExportEndToEnd(t *testing.T) {
	f := traceFUN3D(t)
	const procs, steps = 8, 3
	_, tr, _ := runPipeline(t, f, procs, steps, 4, true)

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	ct, err := obs.ReadChrome(fh)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ValidateChrome(ct)
	if err != nil {
		t.Fatal(err)
	}
	if spans != tr.SpanCount() {
		t.Fatalf("exported %d spans, tracer holds %d", spans, tr.SpanCount())
	}

	// Track names: every rank plus the server/catalog pids.
	a := obs.Analyze(ct)
	for r := 0; r < procs; r++ {
		if a.Procs[obs.PidRank(r)] == "" {
			t.Fatalf("rank %d has no process_name metadata", r)
		}
	}
	if a.Procs[obs.PidServers] == "" || a.Procs[obs.PidCatalog] == "" {
		t.Fatalf("server/catalog tracks unnamed: %v", a.Procs)
	}
	if len(a.Servers) == 0 {
		t.Fatal("no PFS server lanes in the export")
	}
	for _, s := range a.Servers {
		if b := s.Busyness(); b < 0 || b > 1 {
			t.Fatalf("server %d busyness %v out of range", s.Tid, b)
		}
	}

	// A deep pipeline must fan per-file flushes onto extra fork lanes
	// of at least one rank, and every lane must nest properly.
	extraLane := false
	type lane struct{ pid, tid int }
	byLane := map[lane][]obs.ChromeEvent{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		byLane[lane{ev.Pid, ev.Tid}] = append(byLane[lane{ev.Pid, ev.Tid}], ev)
		if ev.Pid >= obs.PidRank(0) && ev.Pid <= obs.PidRank(procs-1) && ev.Tid > 0 {
			extraLane = true
		}
	}
	if !extraLane {
		t.Fatal("no forked lanes on any rank — overlap lost in layout")
	}
	// Compare at nanosecond resolution: Ts/Dur are microsecond floats,
	// so ns-exact adjacent windows can differ by an ulp after x.Ts+x.Dur.
	ns := func(us float64) int64 { return int64(math.Round(us * 1e3)) }
	for k, evs := range byLane {
		for i := range evs {
			for j := i + 1; j < len(evs); j++ {
				x, y := evs[i], evs[j]
				xs, xe := ns(x.Ts), ns(x.Ts+x.Dur)
				ys, ye := ns(y.Ts), ns(y.Ts+y.Dur)
				disjoint := xe <= ys || ye <= xs
				nested := (xs <= ys && ye <= xe) || (ys <= xs && xe <= ye)
				if !disjoint && !nested {
					t.Fatalf("lane %v: %q [%d,%d] and %q [%d,%d] partially overlap",
						k, x.Name, xs, xe, y.Name, ys, ye)
				}
			}
		}
	}
}

// The metrics registry picks up every subsystem once wired through the
// cluster, and keeps working after AttachStorage re-wires the sources.
func TestClusterMetricsRegistry(t *testing.T) {
	f := traceFUN3D(t)
	cl := sdm.NewCluster(sdm.Origin2000Config(4))
	reg := sdm.NewRegistry()
	cl.SetMetrics(reg)
	if err := f.Stage(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PipelineWriteBandwidth(cl, 2, 2); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, key := range []string{
		"core.steps", "core.flushed-files", "core.staged-bytes",
		"pfs.write-requests", "pfs.bytes-written",
		"metadb.queries", "catalog.calls",
	} {
		if snap[key] <= 0 {
			t.Errorf("metric %q = %d, want > 0", key, snap[key])
		}
	}
	// The snapshot source must agree with the subsystem accessor.
	if got, want := snap["pfs.bytes-written"], cl.FS.StatsSnapshot().BytesWritten; got != want {
		t.Fatalf("pfs.bytes-written = %d, accessor says %d", got, want)
	}
	if got, want := snap["metadb.queries"], cl.DB.QueryCount(); got != want {
		t.Fatalf("metadb.queries = %d, accessor says %d", got, want)
	}
}
