package sdm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sdm/internal/metadb"
	"sdm/internal/store"
)

// FsckReport is the result of a bundle consistency check: what was
// verified, what is wrong, and — in repair mode — what was fixed. A
// bundle is healthy iff len(Errors) == 0.
type FsckReport struct {
	// WALPending reports that a wal.log was found (an interrupted
	// save); WALSealed whether it reached its commit point.
	WALPending bool
	WALSealed  bool
	// WALAction is what recovery did in repair mode: "rolled-forward",
	// "rolled-back", or "" when there was nothing to recover.
	WALAction string

	// Files and Bytes inventory the manifest's file set.
	Files int
	Bytes int64
	// Orphans counts backend objects (or cas chunk files) the manifest
	// does not account for.
	Orphans int

	// Errors are consistency violations; Repaired records fixes
	// applied in repair mode.
	Errors   []string
	Repaired []string
}

func (r *FsckReport) errorf(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

func (r *FsckReport) repairedf(format string, args ...any) {
	r.Repaired = append(r.Repaired, fmt.Sprintf(format, args...))
}

// FsckBundle verifies (and with repair, fixes) a saved bundle:
//
//   - write-ahead log: a pending wal.log is reported; repair mode
//     replays a committed save or rolls an uncommitted one back.
//   - manifest: parses, has a supported format.
//   - catalog: catalog.db loads into the metadata engine.
//   - file inventory: every manifest file exists in the backend at the
//     manifest's size; backend objects the manifest does not name are
//     orphans (repair removes them).
//   - cas bundles: chunk refcount audit (store.CAS.CheckRefs) and an
//     orphan chunk-file sweep (repair reclaims them via GC).
//   - obj bundles: abandoned multipart upload sessions on the remote —
//     half-staged parts a crashed save left behind — are reported
//     (repair aborts them).
//
// It holds the bundle lock throughout, so it is safe against
// concurrent saves and GCs.
func FsckBundle(dir string, repair bool) (*FsckReport, error) {
	rep := &FsckReport{}
	mu := bundleLock(dir)
	mu.Lock()
	defer mu.Unlock()

	// Phase 1: the write-ahead log.
	walPath := filepath.Join(dir, bundleWALName)
	if _, err := os.Stat(walPath); err == nil {
		rep.WALPending = true
		_, sealed, err := store.ReadWAL(walPath)
		if err != nil {
			return rep, err
		}
		rep.WALSealed = sealed
		if repair {
			if err := recoverBundleLocked(dir, rep); err != nil {
				return rep, fmt.Errorf("sdm: fsck wal recovery: %w", err)
			}
			rep.repairedf("wal: %s interrupted save", rep.WALAction)
		} else {
			verb := "uncommitted save needs rollback"
			if sealed {
				verb = "committed save needs replay"
			}
			rep.errorf("wal: pending log (%s); run with repair", verb)
		}
	}

	// Phase 2: the manifest.
	raw, err := os.ReadFile(filepath.Join(dir, bundleManifestName))
	if err != nil {
		rep.errorf("manifest: %v", err)
		return rep, nil
	}
	var m bundleManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		rep.errorf("manifest: corrupt: %v", err)
		return rep, nil
	}
	if m.Format != 1 {
		rep.errorf("manifest: unsupported format %d", m.Format)
		return rep, nil
	}

	// Phase 3: the catalog snapshot.
	if cf, err := os.Open(filepath.Join(dir, bundleCatalogName)); err != nil {
		rep.errorf("catalog: %v", err)
	} else {
		db := metadb.New()
		if err := db.Load(cf); err != nil {
			rep.errorf("catalog: does not load: %v", err)
		}
		cf.Close()
	}

	// Phase 4: the file inventory against the backend.
	b, svc, err := bundleBackend(dir, m.spec(), nil, nil)
	if err != nil {
		rep.errorf("backend: %v", err)
		return rep, nil
	}
	live := make(map[string]bool, len(m.Files))
	for _, f := range m.Files {
		live[f.Name] = true
		rep.Files++
		rep.Bytes += f.Size
		sz, err := b.Stat(f.Name)
		if err != nil {
			rep.errorf("file %q: missing from backend: %v", f.Name, err)
			continue
		}
		if sz != f.Size {
			rep.errorf("file %q: backend size %d, manifest says %d", f.Name, sz, f.Size)
		}
	}
	names, err := b.List()
	if err != nil {
		rep.errorf("backend list: %v", err)
		return rep, nil
	}
	for _, n := range names {
		if live[n] {
			continue
		}
		rep.Orphans++
		kind := "orphan object"
		if strings.HasPrefix(n, bundleStagePrefix) {
			kind = "orphan staged object"
		}
		if repair {
			if err := b.Remove(n); err != nil {
				rep.errorf("removing %s %q: %v", kind, n, err)
			} else {
				rep.repairedf("removed %s %q", kind, n)
			}
		} else {
			rep.errorf("%s %q not in manifest (repair removes it)", kind, n)
		}
	}

	// Phase 5: cas-specific audit — refcounts and orphan chunk files.
	if cas, ok := b.(*store.CAS); ok {
		if err := cas.CheckRefs(); err != nil {
			rep.errorf("cas refcount audit: %v", err)
		}
		orphans, err := cas.OrphanChunkFiles()
		if err != nil {
			rep.errorf("cas orphan scan: %v", err)
		} else if orphans > 0 {
			rep.Orphans += orphans
			if repair {
				st, err := cas.GC(func(name string) bool { return live[name] })
				if err != nil {
					rep.errorf("cas gc: %v", err)
				} else {
					rep.repairedf("cas gc reclaimed %d orphan chunk files (%d chunks, %d bytes)",
						st.OrphansRemoved, st.ChunksReclaimed, st.BytesReclaimed)
				}
			} else {
				rep.errorf("cas: %d orphan chunk files on disk (repair reclaims them)", orphans)
			}
		}
	}
	// Phase 6: obj-specific audit — multipart sessions no live save
	// owns (the bundle lock is held, so any session seen here is
	// abandoned).
	if svc != nil {
		if abandoned := svc.AbandonedUploads(); len(abandoned) > 0 {
			if repair {
				svc.AbortAllUploads()
				rep.repairedf("objstore: aborted %d abandoned multipart upload(s)", len(abandoned))
			} else {
				for id, key := range abandoned {
					rep.errorf("objstore: abandoned multipart upload %s targeting %q (repair aborts it)", id, key)
				}
			}
		}
	}
	if repair {
		if err := b.Sync(); err != nil {
			rep.errorf("backend sync: %v", err)
		}
	}
	return rep, nil
}
