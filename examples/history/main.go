// Command history demonstrates SDM's history-file optimization across
// application runs: the first run pays the full ring-oriented index
// distribution and registers it (SDM_index_registry); the second run —
// same problem size, same process count — finds the history in
// index_table and replays the partition with a contiguous read. A third
// run on a different process count shows the documented limitation: the
// history cannot be reused, and SDM falls back to the ring.
//
// Run with:
//
//	go run ./examples/history [-nx 20] [-procs 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"sdm"
	"sdm/meshgen"
	"sdm/partitioner"
)

func main() {
	nx := flag.Int("nx", 20, "mesh grid cells per dimension")
	procs := flag.Int("procs", 8, "simulated process count for runs 1 and 2")
	flag.Parse()

	m, err := meshgen.GenerateTet(*nx, *nx, *nx)
	if err != nil {
		log.Fatal(err)
	}
	msh, layout, err := meshgen.EncodeMsh(m, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes, %d edges\n", m.NumNodes(), m.NumEdges())

	graph, err := partitioner.FromEdges(m.NumNodes(), m.Edge1, m.Edge2)
	if err != nil {
		log.Fatal(err)
	}

	// One cluster persists across "runs": its file system holds the
	// mesh and history files, its database the metadata — the role of
	// the machine's disks and MySQL instance between job submissions.
	cluster := sdm.NewCluster(sdm.Origin2000Config(*procs))
	if err := cluster.StageFile("uns3d.msh", msh); err != nil {
		log.Fatal(err)
	}

	runOnce := func(label string, nprocs int) {
		partVec, err := partitioner.Multilevel(graph, nprocs, partitioner.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		// Reuse the same storage and metadata, but a fresh set of
		// processes — possibly a different number of them.
		world := sdm.NewCluster(sdm.Origin2000Config(nprocs))
		world.AttachStorage(cluster)

		err = world.Run(func(p *sdm.Proc) {
			// Level-1 (file-per-timestep) output with a 4-deep step
			// pipeline: each checkpoint lands in its own file, so up to 4
			// asynchronous flushes stay in flight back-to-back.
			s, err := p.Initialize("historydemo", sdm.Options{
				Organization:      sdm.Level1,
				StepPipelineDepth: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			defer s.Finalize()
			imp, err := s.MakeImportlist("uns3d.msh", []sdm.ImportSpec{
				{Name: "edge1", Type: sdm.Integer, FileOffset: layout.Edge1Offset(), Length: layout.NumEdges, Content: "INDEX"},
				{Name: "edge2", Type: sdm.Integer, FileOffset: layout.Edge2Offset(), Length: layout.NumEdges, Content: "INDEX"},
			})
			if err != nil {
				log.Fatal(err)
			}
			t0 := p.Comm.Now()
			ip, err := s.PartitionIndex(imp, "edge1", "edge2", partVec)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := p.Comm.Now().Sub(t0)
			if !ip.FromHistory {
				if err := s.IndexRegistry(ip, layout.NumEdges, partVec); err != nil {
					log.Fatal(err)
				}
			}
			// Stream the run's result checkpoints through the async
			// split-collective step API: every timestep writes its own
			// level-1 file, so the 4-deep pipeline keeps several flushes
			// in flight at once — BeginStep opens the next epoch while
			// earlier tokens are still outstanding, and EndStepAsync
			// joins only what the depth bound (or a file conflict)
			// requires. Finalize drains whatever is still in flight —
			// the same pattern as SDM's asynchronous history-file write
			// above, generalized to the whole checkpoint stream.
			const checkpoints = 4
			res := sdm.MakeDatalist("p")
			res[0].GlobalSize = int64(m.NumNodes())
			gr, err := s.SetAttributes(res)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := gr.DataView([]string{"p"}, ip.OwnedNodes); err != nil {
				log.Fatal(err)
			}
			dp, err := sdm.DatasetOf[float64](gr, "p")
			if err != nil {
				log.Fatal(err)
			}
			vals := make([]float64, len(ip.OwnedNodes))
			for ts := int64(1); ts <= checkpoints; ts++ {
				for i, g := range ip.OwnedNodes {
					vals[i] = float64(g) + float64(ts)
				}
				if err := s.BeginStep(ts); err != nil {
					log.Fatal(err)
				}
				if err := dp.Put(vals); err != nil {
					log.Fatal(err)
				}
				if _, err := s.EndStepAsync(); err != nil {
					log.Fatal(err)
				}
			}
			if p.Rank() == 0 {
				src := "ring distribution"
				if ip.FromHistory {
					src = "history file"
				}
				fmt.Printf("%-28s procs=%-3d partition via %-17s in %8v (local edges: %d)\n",
					label, nprocs, src, elapsed, ip.NumEdges())
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	runOnce("run 1 (cold)", *procs)
	runOnce("run 2 (history hit)", *procs)
	runOnce("run 3 (different procs)", *procs/2)
	runOnce("run 4 (history hit again)", *procs/2)

	hists, err := cluster.Catalog.Histories(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nindex_table now holds:")
	for _, h := range hists {
		fmt.Printf("  problem_size=%d nprocs=%d file=%s\n", h.ProblemSize, h.NProcs, h.FileName)
	}
}
