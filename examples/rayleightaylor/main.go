// Command rayleightaylor runs the paper's second application: a
// Rayleigh–Taylor instability evolving on a tetrahedral mesh, writing
// two datasets per checkpoint — a node dataset ordered by global node
// number and a triangle dataset written contiguously. It compares the
// original (strictly sequential) write strategy against SDM under
// level 1 and level 2/3 file organizations, the content of Figure 7.
// With -vtk it also exports the final checkpoint as a VTK file for
// ParaView/VisIt, the visualization support the paper planned.
//
// Run with:
//
//	go run ./examples/rayleightaylor [-nx 24] [-procs 8] [-steps 5] [-vtk out.vtk]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sdm"
	"sdm/meshgen"
	"sdm/partitioner"
	"sdm/vis"
)

func main() {
	nx := flag.Int("nx", 24, "mesh grid cells per dimension")
	procs := flag.Int("procs", 8, "simulated process count")
	steps := flag.Int("steps", 5, "checkpoints to write")
	vtkPath := flag.String("vtk", "", "export the final checkpoint to this VTK file")
	flag.Parse()

	m, err := meshgen.GenerateTet(*nx, *nx, *nx)
	if err != nil {
		log.Fatal(err)
	}
	rt := meshgen.NewRT(m)
	nNodes := int64(m.NumNodes())
	nTris := int64(rt.NumTriangles())
	perStepMB := float64(nNodes+nTris) * 8 / 1e6
	fmt.Printf("RT mesh: %d nodes, %d boundary triangles; %.2f MB per checkpoint, %d checkpoints\n",
		m.NumNodes(), rt.NumTriangles(), perStepMB, *steps)

	graph, err := partitioner.FromEdges(m.NumNodes(), m.Edge1, m.Edge2)
	if err != nil {
		log.Fatal(err)
	}
	partVec, err := partitioner.Multilevel(graph, *procs, partitioner.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	for _, level := range []sdm.FileOrganization{sdm.Level1, sdm.Level2} {
		cluster := sdm.NewCluster(sdm.Origin2000Config(*procs))
		err := cluster.Run(func(p *sdm.Proc) {
			s, err := p.Initialize("rt", sdm.Options{Organization: level})
			if err != nil {
				log.Fatal(err)
			}
			defer s.Finalize()

			// The node dataset is written by owned node (global node
			// order); the triangle dataset contiguously by block — the
			// paper's exact description.
			owned := s.PartitionTable(partVec)
			gn, err := s.SetAttributes([]sdm.Attr{{Name: "node", Type: sdm.Double, GlobalSize: nNodes}})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := gn.DataView([]string{"node"}, owned); err != nil {
				log.Fatal(err)
			}
			per := nTris / int64(p.Size())
			rem := nTris % int64(p.Size())
			start := int64(p.Rank())*per + min64(int64(p.Rank()), rem)
			count := per
			if int64(p.Rank()) < rem {
				count++
			}
			triMap := make([]int32, count)
			for i := range triMap {
				triMap[i] = int32(start + int64(i))
			}
			gt, err := s.SetAttributes([]sdm.Attr{{Name: "tri", Type: sdm.Double, GlobalSize: nTris}})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := gt.DataView([]string{"tri"}, triMap); err != nil {
				log.Fatal(err)
			}
			node, err := sdm.DatasetOf[float64](gn, "node")
			if err != nil {
				log.Fatal(err)
			}
			tri, err := sdm.DatasetOf[float64](gt, "tri")
			if err != nil {
				log.Fatal(err)
			}

			// Each checkpoint is one Manager-level cross-group step: the
			// node and triangle datasets (separate groups, separate
			// files) flush in a single rendezvous with one
			// execution-table batch, issued asynchronously so the next
			// checkpoint's data assembly overlaps the outstanding flush.
			var tok *sdm.StepToken
			for ts := 0; ts < *steps; ts++ {
				t := float64(ts) * 0.5
				nodeFull := rt.NodeDataset(t)
				triFull := rt.TriangleDataset(t)
				nodeLocal := make([]float64, len(owned))
				for i, g := range owned {
					nodeLocal[i] = nodeFull[g]
				}
				if tok != nil {
					if err := tok.Wait(); err != nil {
						log.Fatal(err)
					}
				}
				if err := s.BeginStep(int64(ts)); err != nil {
					log.Fatal(err)
				}
				if err := node.Put(nodeLocal); err != nil {
					log.Fatal(err)
				}
				if err := tri.Put(triFull[start : start+count]); err != nil {
					log.Fatal(err)
				}
				if tok, err = s.EndStepAsync(); err != nil {
					log.Fatal(err)
				}
				if p.Rank() == 0 && level == sdm.Level1 {
					fmt.Printf("  t=%.1f mixing width %.4f: checkpoint %d written\n",
						t, rt.MixingWidth(t), ts)
				}
			}
			if tok != nil {
				if err := tok.Wait(); err != nil {
					log.Fatal(err)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		totalMB := float64(*steps) * perStepMB
		sec := cluster.Elapsed().Seconds()
		fmt.Printf("%-8v: %d files, %.1f MB in %.3fs virtual => %.1f MB/s\n",
			level, len(cluster.ListFiles()), totalMB, sec, totalMB/sec)
	}

	if *vtkPath != "" {
		// Visualization support: export the final checkpoint's density
		// field over the tet mesh.
		f, err := os.Create(*vtkPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		t := float64(*steps-1) * 0.5
		err = vis.WriteTetMesh(f, m, fmt.Sprintf("RT density at t=%.1f", t),
			vis.Field{Name: "density", Assoc: vis.PerNode, Data: rt.NodeDataset(t)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("VTK export: %s\n", *vtkPath)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
