// Command restart demonstrates run bundles: the write phase runs a
// small irregular application and saves everything — metadata catalog
// plus file bytes — as a self-contained bundle directory; the read
// phase, meant to run as a separate OS process, opens the bundle,
// attaches to the saved run, and reads every checkpoint back by name
// through the execution table, verifying the values.
//
// Run as two processes (the point of the exercise):
//
//	go run ./examples/restart -phase write -dir /tmp/sdm-bundle
//	go run ./examples/restart -phase read  -dir /tmp/sdm-bundle
//
// Or let one invocation do both (still through the disk):
//
//	go run ./examples/restart -dir /tmp/sdm-bundle
//
// Inspect the saved bundle with the companion tools:
//
//	go run ./cmd/sdmcat -list /tmp/sdm-bundle
//	go run ./cmd/sdmcat -dataset pressure -timestep 2 -head 8 /tmp/sdm-bundle
//	go run ./cmd/sdmls /tmp/sdm-bundle/catalog.db
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sdm"
)

const (
	globalN = 1 << 14
	steps   = 3
)

// value is the deterministic content of dataset ds at (timestep, global
// index), so the read phase can verify without any shared state.
func value(ds string, ts int64, g int32) float64 {
	if ds == "velocity" {
		return -float64(g) - float64(ts)
	}
	return float64(g) + float64(ts)*0.001
}

// mapFor is rank's round-robin irregular mapping; both phases derive
// it from (rank, size) alone.
func mapFor(rank, size int) []int32 {
	var m []int32
	for g := rank; g < globalN; g += size {
		m = append(m, int32(g))
	}
	return m
}

func main() {
	dir := flag.String("dir", filepath.Join(os.TempDir(), "sdm-bundle"), "bundle directory")
	phase := flag.String("phase", "both", "write, read, or both")
	procs := flag.Int("procs", 4, "simulated process count (must match across phases)")
	backend := flag.String("backend", "cas", "bundle storage: dir or cas")
	compress := flag.Bool("compress", true, "flate-compress cas chunks")
	flag.Parse()

	switch *phase {
	case "write":
		writePhase(*dir, *procs, *backend, *compress)
	case "read":
		readPhase(*dir, *procs)
	case "both":
		writePhase(*dir, *procs, *backend, *compress)
		readPhase(*dir, *procs)
	default:
		log.Fatalf("unknown -phase %q", *phase)
	}
}

func writePhase(dir string, procs int, backend string, compress bool) {
	cluster := sdm.NewCluster(sdm.ClusterConfig{Procs: procs})
	err := cluster.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("restartdemo", sdm.Options{Organization: sdm.Level3})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Finalize()
		attrs := sdm.MakeDatalist("pressure", "velocity")
		for i := range attrs {
			attrs[i].GlobalSize = globalN
		}
		g, err := s.SetAttributes(attrs)
		if err != nil {
			log.Fatal(err)
		}
		mapArr := mapFor(p.Rank(), p.Size())
		if _, err := g.DataView([]string{"pressure", "velocity"}, mapArr); err != nil {
			log.Fatal(err)
		}
		// Typed handles and value buffers are hoisted out of the step
		// loop; each checkpoint is then one deferred epoch, both
		// datasets flushing in a single merged collective.
		names := []string{"pressure", "velocity"}
		handles := make(map[string]*sdm.Dataset[float64], len(names))
		vals := make(map[string][]float64, len(names))
		for _, ds := range names {
			h, err := sdm.DatasetOf[float64](g, ds)
			if err != nil {
				log.Fatal(err)
			}
			handles[ds] = h
			vals[ds] = make([]float64, len(mapArr))
		}
		for ts := int64(0); ts < steps; ts++ {
			if err := g.BeginStep(ts); err != nil {
				log.Fatal(err)
			}
			for _, ds := range names {
				for i, gi := range mapArr {
					vals[ds][i] = value(ds, ts, gi)
				}
				if err := handles[ds].Put(vals[ds]); err != nil {
					log.Fatal(err)
				}
			}
			if err := g.EndStep(); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	err = cluster.SaveBundleOpts(dir, sdm.BundleOptions{Backend: backend, Compress: compress})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write phase: %d checkpoints of 2 datasets in %v virtual time\n",
		steps, cluster.Elapsed())
	fmt.Printf("saved bundle to %s (backend %s)\n", dir, backend)
}

func readPhase(dir string, procs int) {
	cluster, err := sdm.OpenBundle(dir, sdm.ClusterConfig{Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	runs, err := cluster.Catalog.Runs(nil)
	if err != nil || len(runs) == 0 {
		log.Fatalf("bundle has no runs (err %v)", err)
	}
	runID := runs[len(runs)-1].RunID
	err = cluster.Run(func(p *sdm.Proc) {
		s, err := p.Initialize("restartdemo", sdm.Options{
			Organization: sdm.Level3,
			AttachRun:    runID,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Finalize()
		g, err := s.OpenGroup([]string{"pressure", "velocity"})
		if err != nil {
			log.Fatal(err)
		}
		mapArr := mapFor(p.Rank(), p.Size())
		if _, err := g.DataView([]string{"pressure", "velocity"}, mapArr); err != nil {
			log.Fatal(err)
		}
		// Read each checkpoint back as one batched epoch through typed
		// handles (hoisted out of the loop) and verify.
		names := []string{"pressure", "velocity"}
		handles := make(map[string]*sdm.Dataset[float64], len(names))
		got := make(map[string][]float64, len(names))
		for _, ds := range names {
			h, err := sdm.DatasetOf[float64](g, ds)
			if err != nil {
				log.Fatal(err)
			}
			handles[ds] = h
			got[ds] = make([]float64, len(mapArr))
		}
		for ts := int64(0); ts < steps; ts++ {
			if err := g.BeginStep(ts); err != nil {
				log.Fatal(err)
			}
			for _, ds := range names {
				if err := handles[ds].Get(got[ds]); err != nil {
					log.Fatal(err)
				}
			}
			if err := g.EndStep(); err != nil {
				log.Fatal(err)
			}
			for _, ds := range names {
				for i, gi := range mapArr {
					if want := value(ds, ts, gi); got[ds][i] != want {
						log.Fatalf("rank %d: %s@%d elem %d = %g, want %g",
							p.Rank(), ds, ts, gi, got[ds][i], want)
					}
				}
			}
		}
		if p.Rank() == 0 {
			fmt.Printf("read phase: attached to run %d, verified %d checkpoints of 2 datasets\n",
				runID, steps)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read phase virtual time: %v\n", cluster.Elapsed())
}
