// Command quickstart is the smallest complete SDM program: four
// simulated processes write a two-dataset data group through irregular
// views and read it back, with all metadata recorded in the embedded
// database.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdm"
)

func main() {
	const (
		procs   = 4
		globalN = 1 << 14 // elements per dataset
		steps   = 3
	)
	cluster := sdm.NewCluster(sdm.ClusterConfig{Procs: procs})

	err := cluster.Run(func(p *sdm.Proc) {
		// SDM_initialize: connect to the metadata database and register
		// this run.
		s, err := p.Initialize("quickstart", sdm.Options{Organization: sdm.Level3})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Finalize()

		// SDM_make_datalist + SDM_set_attributes: register a data group
		// of two double-precision datasets with the same global size.
		attrs := sdm.MakeDatalist("pressure", "velocity")
		for i := range attrs {
			attrs[i].GlobalSize = globalN
		}
		group, err := s.SetAttributes(attrs)
		if err != nil {
			log.Fatal(err)
		}

		// SDM_data_view: this rank's elements are strided round-robin
		// across the global array — an irregular mapping that becomes a
		// noncontiguous collective file view.
		var mapArr []int32
		for g := p.Rank(); g < globalN; g += p.Size() {
			mapArr = append(mapArr, int32(g))
		}
		if _, err := group.DataView([]string{"pressure", "velocity"}, mapArr); err != nil {
			log.Fatal(err)
		}

		// Typed handles on the registered datasets: Put/Get replace the
		// old float64 byte-slice calls.
		pressure, err := sdm.DatasetOf[float64](group, "pressure")
		if err != nil {
			log.Fatal(err)
		}
		velocity, err := sdm.DatasetOf[float64](group, "velocity")
		if err != nil {
			log.Fatal(err)
		}

		// Write three checkpoints; each timestep is one deferred epoch,
		// so both datasets flush in a single merged collective and the
		// execution table records the whole step in one rank-0 batch.
		pr := make([]float64, len(mapArr))
		ve := make([]float64, len(mapArr))
		for ts := 0; ts < steps; ts++ {
			for i, g := range mapArr {
				pr[i] = float64(g) + float64(ts)*0.001
				ve[i] = -float64(g)
			}
			if err := group.BeginStep(int64(ts * 10)); err != nil {
				log.Fatal(err)
			}
			if err := pressure.Put(pr); err != nil {
				log.Fatal(err)
			}
			if err := velocity.Put(ve); err != nil {
				log.Fatal(err)
			}
			if err := group.EndStep(); err != nil {
				log.Fatal(err)
			}
		}

		// SDM_read: fetch the middle checkpoint back and verify.
		got := make([]float64, len(mapArr))
		if err := pressure.GetAt(10, got); err != nil {
			log.Fatal(err)
		}
		for i, g := range mapArr {
			want := float64(g) + 0.001
			if got[i] != want {
				log.Fatalf("rank %d: element %d = %g, want %g", p.Rank(), g, got[i], want)
			}
		}
		if p.Rank() == 0 {
			fmt.Printf("rank 0: wrote and verified %d checkpoints of 2 datasets (run id %d)\n",
				steps, s.RunID())
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("files created: %v\n", cluster.ListFiles())
	fmt.Printf("virtual time elapsed: %v\n", cluster.Elapsed())

	// The metadata survives the run: list what the catalog recorded.
	runs, err := cluster.Catalog.Runs(nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range runs {
		fmt.Printf("run_table: id=%d app=%s\n", r.RunID, r.Application)
	}
	recs, err := cluster.Catalog.WritesForRun(nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution_table: %d write records\n", len(recs))
	for _, rec := range recs[:3] {
		fmt.Printf("  dataset=%s timestep=%d offset=%d file=%s\n",
			rec.Dataset, rec.Timestep, rec.FileOffset, rec.FileName)
	}
}
