module sdm

go 1.24
